// Held–Karp 1-tree lower bound on the optimal tour length.
//
// The optimal-ratio reference for synthetic instances is a heuristic tour
// (no published optimum exists); this module brackets the truth from the
// other side with a certified lower bound:
//
//   * a 1-tree (MST over V∖{r} plus the two cheapest edges at r) weighs no
//     more than any tour — every tour is a 1-tree;
//   * Held–Karp subgradient ascent on node potentials π tightens the
//     bound: with d'(i,j) = d(i,j) + π_i + π_j every tour gains exactly
//     2Σπ, so (1-tree weight under d') − 2Σπ remains a valid bound, and
//     ascent on π (stepping towards degree-2 trees) typically reaches
//     ~99 % of the optimum on Euclidean instances.
//
// The MST is computed densely (exact), so the bound is certified; cost is
// O(iterations · n²) — practical to ~20k cities.
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"

namespace cim::heuristics {

struct LowerBoundOptions {
  std::size_t iterations = 50;   ///< subgradient ascent steps (0 = plain 1-tree)
  double initial_step = 1.0;     ///< step scale relative to the gap estimate
  std::size_t max_cities = 20000;///< refuse larger instances (O(n²) MSTs)
};

struct LowerBoundResult {
  double bound = 0.0;        ///< certified lower bound on the optimal tour
  double plain_one_tree = 0.0;  ///< bound before ascent (iteration 0)
  std::size_t iterations_run = 0;
};

/// Computes the bound; throws ConfigError above max_cities.
LowerBoundResult held_karp_lower_bound(const tsp::Instance& instance,
                                       const LowerBoundOptions& options = {});

/// Exact MST weight over all cities (dense Prim) — itself a weaker lower
/// bound on the optimal tour minus one edge; exposed for tests.
double mst_weight(const tsp::Instance& instance);

}  // namespace cim::heuristics
