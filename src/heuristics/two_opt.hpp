// 2-opt local search with k-nearest candidate lists and don't-look bits —
// the classical fast implementation that scales to ~10⁵ cities. Used to
// produce the near-optimal reference tours against which optimal ratios
// are reported.
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"
#include "tsp/neighbors.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

struct TwoOptOptions {
  std::size_t neighbor_k = 10;    ///< candidate list size
  std::size_t max_passes = 64;    ///< hard cap on improvement sweeps
  const tsp::NeighborLists* neighbors = nullptr;  ///< optional prebuilt lists
  /// 1 (default): the classical sequential greedy sweep — bit-identical
  /// to the historical implementation. >1: each pass scans all candidate
  /// moves in parallel against a frozen tour snapshot on the shared
  /// util::ThreadPool, then applies the surviving moves serially in city
  /// order with revalidation. Deterministic and identical for every
  /// value > 1 (chunking is index-fixed, apply order is serial), but the
  /// move sequence — and thus the exact local optimum — differs from the
  /// sequential sweep.
  std::size_t scan_threads = 1;
};

struct TwoOptResult {
  long long initial_length = 0;
  long long final_length = 0;
  std::size_t improvements = 0;
  std::size_t passes = 0;
};

/// Improves `tour` in place until 2-opt-local-optimal w.r.t. the candidate
/// lists (or max_passes reached).
TwoOptResult two_opt(const tsp::Instance& instance, tsp::Tour& tour,
                     const TwoOptOptions& options = {});

}  // namespace cim::heuristics
