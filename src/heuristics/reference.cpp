#include "heuristics/reference.hpp"

#include "heuristics/construct.hpp"
#include "heuristics/or_opt.hpp"
#include "heuristics/two_opt.hpp"
#include "tsp/best_known.hpp"
#include "tsp/generator.hpp"
#include "tsp/neighbors.hpp"
#include "util/log.hpp"

namespace cim::heuristics {

Reference compute_heuristic_reference(const tsp::Instance& instance,
                                      const ReferenceOptions& options) {
  Reference ref;
  ref.tour = instance.size() >= 3 ? greedy_edge(instance, options.neighbor_k)
                                  : tsp::Tour::identity(instance.size());
  if (instance.size() < 4) {
    ref.length = ref.tour.length(instance);
    return ref;
  }

  // Candidate distances are precomputed once here and reused across every
  // 2-opt/Or-opt round — the scans then read d(city, cand) from the
  // blocked arrays instead of recomputing the metric per visit.
  const tsp::NeighborLists nbrs(instance, options.neighbor_k,
                                {.with_distances = true});
  TwoOptOptions two;
  two.neighbors = &nbrs;
  two.scan_threads = options.threads;
  OrOptOptions oro;
  oro.neighbors = &nbrs;
  oro.scan_threads = options.threads;

  long long length = ref.tour.length(instance);
  for (std::size_t round = 0; round < options.rounds; ++round) {
    const auto t = two_opt(instance, ref.tour, two);
    const auto o = or_opt(instance, ref.tour, oro);
    if (o.final_length == length && t.improvements == 0 && o.moves == 0) {
      break;
    }
    length = o.final_length;
  }
  ref.length = length;
  return ref;
}

Reference compute_reference(const tsp::Instance& instance,
                            const ReferenceOptions& options) {
  // Published optima only apply when the instance really is the TSPLIB
  // original, not our synthetic mimic of it.
  if (tsp::have_real_tsplib(instance.name())) {
    if (const auto best = tsp::best_known_length(instance.name())) {
      Reference ref;
      ref.length = *best;
      ref.from_registry = true;
      CIM_LOG_INFO << "using published best-known length for "
                   << instance.name() << ": " << *best;
      return ref;
    }
  }
  return compute_heuristic_reference(instance, options);
}

}  // namespace cim::heuristics
