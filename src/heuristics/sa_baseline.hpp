// Conventional CPU simulated annealing on the full (unclustered) TSP.
// This is the software baseline the paper's convergence-speed claim is
// made against: it operates on the complete O(N²)-spin formulation via
// 2-opt neighbourhood moves under a geometric temperature schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

struct SaOptions {
  std::uint64_t seed = 1;
  std::size_t sweeps = 200;          ///< outer temperature steps
  std::size_t moves_per_sweep = 0;   ///< 0 → n moves per sweep
  double t_start_factor = 0.5;       ///< T0 = factor * mean edge length
  double t_end_factor = 0.001;
  std::size_t neighbor_k = 8;        ///< candidate list size for moves
  bool record_trace = true;          ///< record energy after each sweep
};

struct SaResult {
  tsp::Tour tour;
  long long initial_length = 0;
  long long final_length = 0;
  std::size_t accepted = 0;
  std::size_t attempted = 0;
  std::vector<long long> trace;  ///< tour length after each sweep
};

/// Runs SA starting from `initial` (use a constructed tour for realistic
/// baselines or a random tour for convergence studies).
SaResult simulated_annealing(const tsp::Instance& instance,
                             const tsp::Tour& initial,
                             const SaOptions& options = {});

}  // namespace cim::heuristics
