#include "heuristics/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace cim::heuristics {

namespace {

using tsp::CityId;
using tsp::Instance;

/// Dense Prim MST over nodes [1, n) (root city 0 excluded — the 1-tree
/// special node). Fills `degree` (within the tree) and returns the tree
/// weight under the π-modified metric.
double prim_exclude_root(const Instance& instance,
                         const std::vector<double>& pi,
                         std::vector<int>& degree) {
  const std::size_t n = instance.size();
  const auto d = [&](std::size_t a, std::size_t b) {
    return static_cast<double>(
               instance.distance(static_cast<CityId>(a),
                                 static_cast<CityId>(b))) +
           pi[a] + pi[b];
  };

  std::fill(degree.begin(), degree.end(), 0);
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, 1);

  // Start from node 1; node 0 stays out of the tree.
  in_tree[1] = 1;
  for (std::size_t v = 2; v < n; ++v) best[v] = d(1, v);

  double weight = 0.0;
  for (std::size_t added = 2; added < n; ++added) {
    std::size_t pick = 0;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t v = 2; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_d) {
        pick_d = best[v];
        pick = v;
      }
    }
    CIM_ASSERT(pick != 0);
    in_tree[pick] = 1;
    weight += pick_d;
    ++degree[pick];
    ++degree[parent[pick]];
    for (std::size_t v = 2; v < n; ++v) {
      if (in_tree[v]) continue;
      const double dist = d(pick, v);
      if (dist < best[v]) {
        best[v] = dist;
        parent[v] = pick;
      }
    }
  }
  return weight;
}

}  // namespace

double mst_weight(const Instance& instance) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n >= 2, "MST needs at least two cities");
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  in_tree[0] = 1;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = static_cast<double>(instance.distance(0, static_cast<CityId>(v)));
  }
  double weight = 0.0;
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t v = 1; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_d) {
        pick_d = best[v];
        pick = v;
      }
    }
    in_tree[pick] = 1;
    weight += pick_d;
    for (std::size_t v = 1; v < n; ++v) {
      if (in_tree[v]) continue;
      const auto dist = static_cast<double>(
          instance.distance(static_cast<CityId>(pick),
                            static_cast<CityId>(v)));
      if (dist < best[v]) best[v] = dist;
    }
  }
  return weight;
}

LowerBoundResult held_karp_lower_bound(const Instance& instance,
                                       const LowerBoundOptions& options) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n >= 3, "lower bound needs at least three cities");
  CIM_REQUIRE(n <= options.max_cities,
              "instance exceeds lower-bound size limit");

  std::vector<double> pi(n, 0.0);
  std::vector<int> degree(n, 0);
  LowerBoundResult result;

  const auto one_tree = [&](double& out_bound) {
    const double tree = prim_exclude_root(instance, pi, degree);
    // Two cheapest π-modified edges at the root close the 1-tree.
    double e1 = std::numeric_limits<double>::infinity();
    double e2 = std::numeric_limits<double>::infinity();
    std::size_t a1 = 0;
    std::size_t a2 = 0;
    for (std::size_t v = 1; v < n; ++v) {
      const double dist =
          static_cast<double>(instance.distance(0, static_cast<CityId>(v))) +
          pi[0] + pi[v];
      if (dist < e1) {
        e2 = e1;
        a2 = a1;
        e1 = dist;
        a1 = v;
      } else if (dist < e2) {
        e2 = dist;
        a2 = v;
      }
    }
    degree[0] += 2;
    ++degree[a1];
    ++degree[a2];
    double pi_sum = 0.0;
    for (const double p : pi) pi_sum += p;
    out_bound = tree + e1 + e2 - 2.0 * pi_sum;
  };

  double bound = 0.0;
  one_tree(bound);
  result.plain_one_tree = bound;
  result.bound = bound;
  ++result.iterations_run;

  if (options.iterations == 0) return result;

  // Subgradient ascent: π += t · (degree − 2); t decays 1/k-style. The
  // step scale is anchored to the current bound (Held–Karp's classic
  // t₀ ≈ bound / (2n)).
  double step = options.initial_step * bound /
                (2.0 * static_cast<double>(n));
  for (std::size_t it = 0; it < options.iterations; ++it) {
    long long violation = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const int dev = degree[v] - 2;
      violation += static_cast<long long>(dev) * dev;
      pi[v] += step * static_cast<double>(dev);
    }
    if (violation == 0) break;  // degree-2 1-tree IS an optimal tour
    one_tree(bound);
    result.bound = std::max(result.bound, bound);
    ++result.iterations_run;
    step *= 0.95;
  }
  return result;
}

}  // namespace cim::heuristics
