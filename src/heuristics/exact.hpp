// Exact TSP solvers for validation of heuristics and of the annealer on
// small instances: Held–Karp dynamic programming (n ≤ ~20) and brute-force
// permutation enumeration (n ≤ ~11).
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

/// Held–Karp O(2^n · n²) optimal tour. Throws ConfigError for n > 20.
tsp::Tour held_karp(const tsp::Instance& instance);

/// Brute-force optimal tour. Throws ConfigError for n > 12.
tsp::Tour brute_force(const tsp::Instance& instance);

/// Optimal length of the open path v[0]..v[k-1] with fixed endpoints —
/// Held–Karp over a city subset; used to verify cluster-level solves.
/// Visits every city in `cities` exactly once, starting at cities.front()
/// and ending at cities.back(). Throws ConfigError for more than 20 cities.
long long optimal_path_length(const tsp::Instance& instance,
                              const std::vector<tsp::CityId>& cities);

}  // namespace cim::heuristics
