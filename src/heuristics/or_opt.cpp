#include "heuristics/or_opt.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace cim::heuristics {

using tsp::CityId;
using tsp::Instance;
using tsp::NeighborLists;
using tsp::Tour;

namespace {

/// Segment starts per parallel scan chunk — fixed, so chunk boundaries
/// (and the scan result) never depend on the worker count.
constexpr std::size_t kScanGrain = 64;

/// One improving relocation found by the parallel scan: splice the
/// segment of `len` cities starting at s0 out and reinsert it between
/// `c` and next[c], optionally reversed. gain <= 0 means "no move found
/// for this segment start".
struct OrCand {
  CityId c = 0;
  long long gain = 0;  // removed - added, > 0 when improving
  std::uint8_t len = 0;
  bool reversed = false;
};

/// Doubly linked tour representation; Or-opt moves are O(1) splices.
struct LinkedTour {
  std::vector<CityId> next;
  std::vector<CityId> prev;

  explicit LinkedTour(const Tour& tour) {
    const std::size_t n = tour.size();
    next.resize(n);
    prev.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const CityId c = tour.at(i);
      next[c] = tour.successor(i);
      prev[c] = tour.predecessor(i);
    }
  }

  Tour to_tour(std::size_t n) const {
    std::vector<CityId> order;
    order.reserve(n);
    CityId c = 0;
    for (std::size_t i = 0; i < n; ++i) {
      order.push_back(c);
      c = next[c];
    }
    return Tour(std::move(order));
  }
};

}  // namespace

OrOptResult or_opt(const Instance& instance, Tour& tour,
                   const OrOptOptions& options) {
  const std::size_t n = instance.size();
  OrOptResult result;
  result.initial_length = tour.length(instance);
  result.final_length = result.initial_length;
  if (n < 5) return result;

  std::unique_ptr<NeighborLists> owned;
  const NeighborLists* nbrs = options.neighbors;
  if (!nbrs) {
    owned = std::make_unique<NeighborLists>(instance, options.neighbor_k);
    nbrs = owned.get();
  }

  LinkedTour lt(tour);
  std::vector<char> dont_look(n, 0);
  const auto d = [&](CityId a, CityId b) { return instance.distance(a, b); };

  // Splices the segment s0..s1 (len cities, tour direction) out of the
  // tour and reinserts it between c and c_next, reversing it first when
  // requested.
  const auto splice = [&](CityId s0, CityId s1, std::size_t len, CityId before,
                          CityId after, CityId c, CityId c_next,
                          bool reversed) {
    lt.next[before] = after;
    lt.prev[after] = before;
    if (reversed) {
      // Reverse links inside the segment (len ≤ 3: cheap).
      CityId p = s0;
      CityId q = lt.next[p];
      for (std::size_t k = 1; k < len; ++k) {
        const CityId r = lt.next[q];
        lt.next[q] = p;
        lt.prev[p] = q;
        p = q;
        q = r;
      }
    }
    const CityId head = reversed ? s1 : s0;
    const CityId tail = reversed ? s0 : s1;
    lt.next[c] = head;
    lt.prev[head] = c;
    lt.next[tail] = c_next;
    lt.prev[c_next] = tail;
  };

  if (options.scan_threads > 1) {
    // Parallel candidate scan, serial deterministic apply: every pass
    // evaluates all segment relocations against the frozen linked tour on
    // the shared pool (reads only; each segment start writes its own scan
    // slot), then applies surviving moves in ascending s0 order, fully
    // revalidating each against the *current* tour so earlier applies
    // invalidate later stale candidates. Chunking is index-fixed and the
    // apply order is serial, so the outcome is identical for every
    // scan_threads > 1 and every pool width.
    std::vector<OrCand> scan(n);
    bool any_improved = true;
    while (any_improved && result.passes < options.max_passes) {
      any_improved = false;
      ++result.passes;

      util::parallel_for_chunks(
          n, kScanGrain, [&](std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
              const CityId s0 = static_cast<CityId>(s);
              scan[s] = OrCand{};  // clear stale candidates
              if (dont_look[s]) continue;
              CityId s1 = s0;
              for (std::size_t len = 1; len <= options.max_segment; ++len) {
                if (len > 1) s1 = lt.next[s1];
                if (s1 == lt.prev[s0]) break;  // segment covers whole tour
                const CityId before = lt.prev[s0];
                const CityId after = lt.next[s1];
                if (after == before) break;
                const long long removed =
                    d(before, s0) + d(s1, after) - d(before, after);
                if (removed <= 0) continue;

                for (const CityId endpoint : {s0, s1}) {
                  const auto cands = nbrs->of(endpoint);
                  const auto cand_d = nbrs->dist_of(endpoint);
                  for (std::size_t ci = 0; ci < cands.size(); ++ci) {
                    const CityId c = cands[ci];
                    bool inside = false;
                    CityId walk = s0;
                    for (std::size_t k = 0; k < len; ++k) {
                      if (walk == c) {
                        inside = true;
                        break;
                      }
                      walk = lt.next[walk];
                    }
                    if (inside || c == before) continue;
                    const CityId c_next = lt.next[c];
                    if (c_next == s0) continue;
                    // cand_d[ci] is d(endpoint, c) precomputed; the
                    // non-endpoint terms still come from the metric.
                    const long long d_c_end =
                        cand_d.empty() ? d(c, endpoint) : cand_d[ci];
                    const long long d_c_s0 = endpoint == s0 ? d_c_end
                                                            : d(c, s0);
                    const long long d_c_s1 = endpoint == s1 ? d_c_end
                                                            : d(c, s1);
                    const long long base = d(c, c_next);
                    const long long add_fwd = d_c_s0 + d(s1, c_next) - base;
                    const long long add_rev = d_c_s1 + d(s0, c_next) - base;
                    const bool reversed = add_rev < add_fwd;
                    const long long added = reversed ? add_rev : add_fwd;
                    const long long gain = removed - added;
                    if (gain > scan[s].gain) {
                      scan[s] =
                          OrCand{c, gain, static_cast<std::uint8_t>(len),
                                 reversed};
                    }
                  }
                }
              }
              if (scan[s].gain <= 0) dont_look[s] = 1;
            }
          });

      for (std::size_t s = 0; s < n; ++s) {
        if (scan[s].gain <= 0) continue;
        // Fully revalidate against the current tour: earlier applies this
        // pass may have moved the segment, its surroundings, or the
        // insertion point.
        const CityId s0 = static_cast<CityId>(s);
        const std::size_t len = scan[s].len;
        const CityId c = scan[s].c;
        const bool reversed = scan[s].reversed;
        CityId s1 = s0;
        bool inside = (c == s0);
        for (std::size_t k = 1; k < len; ++k) {
          s1 = lt.next[s1];
          if (s1 == c) inside = true;
        }
        if (inside || s1 == lt.prev[s0]) continue;
        const CityId before = lt.prev[s0];
        const CityId after = lt.next[s1];
        if (after == before || c == before) continue;
        const CityId c_next = lt.next[c];
        if (c_next == s0) continue;
        const long long removed =
            d(before, s0) + d(s1, after) - d(before, after);
        const long long base = d(c, c_next);
        const long long added = reversed
                                    ? d(c, s1) + d(s0, c_next) - base
                                    : d(c, s0) + d(s1, c_next) - base;
        if (added >= removed) continue;

        splice(s0, s1, len, before, after, c, c_next, reversed);
        result.final_length -= removed - added;
        ++result.moves;
        dont_look[before] = dont_look[after] = 0;
        dont_look[c] = dont_look[c_next] = 0;
        dont_look[s0] = dont_look[s1] = 0;
        any_improved = true;
      }
    }
  } else {
    bool any_improved = true;
    while (any_improved && result.passes < options.max_passes) {
      any_improved = false;
      ++result.passes;
      for (CityId s0 = 0; s0 < n; ++s0) {
        if (dont_look[s0]) continue;
        bool improved_here = false;

        // Segment s0..s1 of length len starting at s0 (tour direction).
        CityId s1 = s0;
        for (std::size_t len = 1;
             len <= options.max_segment && !improved_here; ++len) {
          if (len > 1) s1 = lt.next[s1];
          if (s1 == lt.prev[s0]) break;  // segment would cover whole tour
          const CityId before = lt.prev[s0];
          const CityId after = lt.next[s1];
          if (after == before) break;

          const long long removed =
              d(before, s0) + d(s1, after) - d(before, after);
          if (removed <= 0) continue;

          // Try inserting between c and next[c] for candidate cities c near
          // the segment endpoints.
          for (const CityId* endpoint : {&s0, &s1}) {
            const auto cands = nbrs->of(*endpoint);
            const auto cand_d = nbrs->dist_of(*endpoint);
            for (std::size_t ci = 0; ci < cands.size(); ++ci) {
              const CityId c = cands[ci];
              // c must lie outside the segment.
              bool inside = false;
              CityId walk = s0;
              for (std::size_t k = 0; k < len; ++k) {
                if (walk == c) {
                  inside = true;
                  break;
                }
                walk = lt.next[walk];
              }
              if (inside || c == before) continue;
              const CityId c_next = lt.next[c];
              if (c_next == s0) continue;

              // Forward: c → s0 … s1 → c_next; reversed: c → s1 … s0 → c_next.
              // cand_d[ci] is d(*endpoint, c) precomputed.
              const long long d_c_end =
                  cand_d.empty() ? d(c, *endpoint) : cand_d[ci];
              const long long d_c_s0 = *endpoint == s0 ? d_c_end : d(c, s0);
              const long long d_c_s1 = *endpoint == s1 ? d_c_end : d(c, s1);
              const long long base = d(c, c_next);
              const long long add_fwd = d_c_s0 + d(s1, c_next) - base;
              const long long add_rev = d_c_s1 + d(s0, c_next) - base;
              const bool reversed = add_rev < add_fwd;
              const long long added = reversed ? add_rev : add_fwd;
              if (added >= removed) continue;

              splice(s0, s1, len, before, after, c, c_next, reversed);
              result.final_length -= removed - added;
              ++result.moves;
              dont_look[before] = dont_look[after] = 0;
              dont_look[c] = dont_look[c_next] = 0;
              dont_look[s0] = dont_look[s1] = 0;
              improved_here = true;
              any_improved = true;
              break;
            }
            if (improved_here) break;
          }
        }
        if (!improved_here) dont_look[s0] = 1;
      }
    }
  }

  tour = lt.to_tour(n);
  CIM_ASSERT_MSG(tour.is_valid(n), "or_opt corrupted the tour");
  CIM_ASSERT_MSG(result.final_length == tour.length(instance),
                 "incremental or_opt length drifted");
  return result;
}

}  // namespace cim::heuristics
