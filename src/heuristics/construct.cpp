#include "heuristics/construct.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>

#include "geo/kdtree.hpp"
#include "tsp/neighbors.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::heuristics {

using tsp::CityId;
using tsp::Instance;
using tsp::Tour;

Tour nearest_neighbor(const Instance& instance, CityId start) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(start < n, "start city out of range");
  std::vector<CityId> order;
  order.reserve(n);

  if (instance.has_coords()) {
    geo::KdTree tree(instance.coords());
    CityId current = start;
    tree.set_active(current, false);
    order.push_back(current);
    while (order.size() < n) {
      const std::size_t next = tree.nearest(instance.coord(current));
      CIM_ASSERT(next != geo::KdTree::npos);
      current = static_cast<CityId>(next);
      tree.set_active(current, false);
      order.push_back(current);
    }
    return Tour(std::move(order));
  }

  std::vector<char> visited(n, 0);
  CityId current = start;
  visited[current] = 1;
  order.push_back(current);
  while (order.size() < n) {
    long long best = std::numeric_limits<long long>::max();
    CityId pick = 0;
    for (CityId c = 0; c < n; ++c) {
      if (visited[c]) continue;
      const long long d = instance.distance(current, c);
      if (d < best) {
        best = d;
        pick = c;
      }
    }
    visited[pick] = 1;
    order.push_back(pick);
    current = pick;
  }
  return Tour(std::move(order));
}

namespace {

/// Union-find for greedy-edge cycle detection.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0U);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

Tour greedy_edge(const Instance& instance, std::size_t k) {
  const std::size_t n = instance.size();
  if (n < 3) return Tour::identity(n);

  struct Edge {
    long long d;
    CityId a;
    CityId b;
    bool operator<(const Edge& other) const { return d < other.d; }
  };

  const tsp::NeighborLists nbrs(instance, k);
  std::vector<Edge> edges;
  edges.reserve(n * nbrs.k());
  for (CityId a = 0; a < n; ++a) {
    for (const CityId b : nbrs.of(a)) {
      if (a < b) edges.push_back({instance.distance(a, b), a, b});
    }
  }
  std::sort(edges.begin(), edges.end());

  std::vector<std::uint8_t> degree(n, 0);
  std::vector<std::array<CityId, 2>> adj(n, {tsp::CityId(-1), tsp::CityId(-1)});
  UnionFind uf(n);
  std::size_t accepted = 0;

  const auto try_add = [&](CityId a, CityId b) {
    if (degree[a] >= 2 || degree[b] >= 2) return false;
    if (!uf.unite(a, b)) return false;  // would close a premature cycle
    adj[a][degree[a]++] = b;
    adj[b][degree[b]++] = a;
    ++accepted;
    return true;
  };

  for (const Edge& e : edges) {
    if (accepted == n - 1) break;
    try_add(e.a, e.b);
  }

  // Completion: connect remaining degree<2 endpoints greedily by distance.
  if (accepted < n - 1) {
    std::vector<CityId> open;
    for (CityId c = 0; c < n; ++c) {
      if (degree[c] < 2) open.push_back(c);
    }
    // Quadratic in the (typically small) number of open endpoints.
    bool progress = true;
    while (accepted < n - 1 && progress) {
      progress = false;
      long long best = std::numeric_limits<long long>::max();
      CityId ba = 0;
      CityId bb = 0;
      for (std::size_t i = 0; i < open.size(); ++i) {
        const CityId a = open[i];
        if (degree[a] >= 2) continue;
        for (std::size_t j = i + 1; j < open.size(); ++j) {
          const CityId b = open[j];
          if (degree[b] >= 2) continue;
          if (uf.find(a) == uf.find(b)) continue;
          const long long d = instance.distance(a, b);
          if (d < best) {
            best = d;
            ba = a;
            bb = b;
          }
        }
      }
      if (best != std::numeric_limits<long long>::max()) {
        progress = try_add(ba, bb);
      }
    }
  }
  CIM_ASSERT_MSG(accepted == n - 1, "greedy edge failed to build a path");

  // Close the Hamiltonian path into a cycle and read the tour off.
  std::vector<CityId> ends;
  for (CityId c = 0; c < n; ++c) {
    if (degree[c] == 1) ends.push_back(c);
  }
  CIM_ASSERT(ends.size() == 2);
  adj[ends[0]][degree[ends[0]]++] = ends[1];
  adj[ends[1]][degree[ends[1]]++] = ends[0];

  std::vector<CityId> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  CityId current = 0;
  CityId previous = tsp::CityId(-1);
  for (std::size_t i = 0; i < n; ++i) {
    order.push_back(current);
    visited[current] = 1;
    const CityId next =
        (adj[current][0] != previous && !visited[adj[current][0]])
            ? adj[current][0]
            : adj[current][1];
    previous = current;
    if (i + 1 < n) {
      CIM_ASSERT_MSG(!visited[next], "greedy edge produced a short cycle");
    }
    current = next;
  }
  return Tour(std::move(order));
}

Tour random_tour(const Instance& instance, std::uint64_t seed) {
  util::Rng rng(seed);
  auto perm = util::random_permutation(instance.size(), rng);
  return Tour(std::move(perm));
}

}  // namespace cim::heuristics
