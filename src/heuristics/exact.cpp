#include "heuristics/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace cim::heuristics {

using tsp::CityId;
using tsp::Instance;
using tsp::Tour;

Tour held_karp(const Instance& instance) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n <= 20, "held_karp limited to 20 cities");
  if (n <= 2) return Tour::identity(n);

  // dp[mask][j]: min cost of a path starting at 0, visiting exactly the
  // cities in mask (0 excluded, bit k ↔ city k+1), ending at city j+1.
  const std::size_t m = n - 1;
  const std::size_t masks = std::size_t{1} << m;
  constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
  std::vector<long long> dp(masks * m, kInf);
  std::vector<std::uint8_t> parent(masks * m, 0xFF);

  for (std::size_t j = 0; j < m; ++j) {
    dp[(std::size_t{1} << j) * m + j] =
        instance.distance(0, static_cast<CityId>(j + 1));
  }
  for (std::size_t mask = 1; mask < masks; ++mask) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const long long base = dp[mask * m + j];
      if (base >= kInf) continue;
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (std::size_t{1} << k)) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << k);
        const long long cost =
            base + instance.distance(static_cast<CityId>(j + 1),
                                     static_cast<CityId>(k + 1));
        if (cost < dp[next_mask * m + k]) {
          dp[next_mask * m + k] = cost;
          parent[next_mask * m + k] = static_cast<std::uint8_t>(j);
        }
      }
    }
  }

  const std::size_t full = masks - 1;
  long long best = kInf;
  std::size_t best_end = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const long long cost =
        dp[full * m + j] + instance.distance(static_cast<CityId>(j + 1), 0);
    if (cost < best) {
      best = cost;
      best_end = j;
    }
  }

  // Reconstruct.
  std::vector<CityId> order;
  order.reserve(n);
  std::size_t mask = full;
  std::size_t j = best_end;
  while (true) {
    order.push_back(static_cast<CityId>(j + 1));
    const std::uint8_t p = parent[mask * m + j];
    mask &= ~(std::size_t{1} << j);
    if (p == 0xFF) break;
    j = p;
  }
  order.push_back(0);
  std::reverse(order.begin(), order.end());
  Tour tour(std::move(order));
  CIM_ASSERT(tour.is_valid(n));
  CIM_ASSERT(tour.length(instance) == best);
  return tour;
}

Tour brute_force(const Instance& instance) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n <= 12, "brute_force limited to 12 cities");
  if (n <= 2) return Tour::identity(n);

  std::vector<CityId> perm(n - 1);
  std::iota(perm.begin(), perm.end(), 1U);
  std::vector<CityId> best_order;
  long long best = std::numeric_limits<long long>::max();
  do {
    long long len = instance.distance(0, perm.front());
    for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
      len += instance.distance(perm[i], perm[i + 1]);
      if (len >= best) break;
    }
    len += instance.distance(perm.back(), 0);
    if (len < best) {
      best = len;
      best_order = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  std::vector<CityId> order{0};
  order.insert(order.end(), best_order.begin(), best_order.end());
  return Tour(std::move(order));
}

long long optimal_path_length(const Instance& instance,
                              const std::vector<CityId>& cities) {
  const std::size_t n = cities.size();
  CIM_REQUIRE(n >= 2, "path needs at least two cities");
  CIM_REQUIRE(n <= 20, "optimal_path_length limited to 20 cities");
  if (n == 2) return instance.distance(cities[0], cities[1]);

  // Interior cities between the fixed endpoints.
  const std::size_t m = n - 2;
  const std::size_t masks = std::size_t{1} << m;
  constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
  std::vector<long long> dp(masks * m, kInf);

  const CityId start = cities.front();
  const CityId goal = cities.back();
  const auto interior = [&](std::size_t j) { return cities[j + 1]; };

  for (std::size_t j = 0; j < m; ++j) {
    dp[(std::size_t{1} << j) * m + j] = instance.distance(start, interior(j));
  }
  for (std::size_t mask = 1; mask < masks; ++mask) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const long long base = dp[mask * m + j];
      if (base >= kInf) continue;
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (std::size_t{1} << k)) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << k);
        const long long cost =
            base + instance.distance(interior(j), interior(k));
        dp[next_mask * m + k] = std::min(dp[next_mask * m + k], cost);
      }
    }
  }
  long long best = kInf;
  for (std::size_t j = 0; j < m; ++j) {
    best = std::min(best,
                    dp[(masks - 1) * m + j] +
                        instance.distance(interior(j), goal));
  }
  return best;
}

}  // namespace cim::heuristics
