// Or-opt local search: relocates segments of 1–3 consecutive cities to a
// better position (both orientations), using candidate lists. Complements
// 2-opt in the reference pipeline.
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"
#include "tsp/neighbors.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

struct OrOptOptions {
  std::size_t neighbor_k = 10;
  std::size_t max_segment = 3;
  std::size_t max_passes = 32;
  const tsp::NeighborLists* neighbors = nullptr;
  /// 1 (default): the classical sequential first-improvement sweep —
  /// bit-identical to the historical implementation. >1: each pass scans
  /// all segment relocations in parallel against a frozen tour snapshot
  /// on the shared util::ThreadPool, then applies the surviving moves
  /// serially in segment-start order with full revalidation.
  /// Deterministic and identical for every value > 1, but the move
  /// sequence — and thus the exact local optimum — differs from the
  /// sequential sweep.
  std::size_t scan_threads = 1;
};

struct OrOptResult {
  long long initial_length = 0;
  long long final_length = 0;
  std::size_t moves = 0;
  std::size_t passes = 0;
};

/// Improves `tour` in place.
OrOptResult or_opt(const tsp::Instance& instance, tsp::Tour& tour,
                   const OrOptOptions& options = {});

}  // namespace cim::heuristics
