// Tour construction heuristics.
#pragma once

#include <cstdint>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

/// Nearest-neighbour construction from `start`. O(n log n) with a kd-tree
/// for coordinate instances, O(n²) for explicit matrices.
tsp::Tour nearest_neighbor(const tsp::Instance& instance,
                           tsp::CityId start = 0);

/// Greedy-edge construction: repeatedly add the shortest edge that keeps
/// degree ≤ 2 and creates no premature cycle. Uses candidate edges from
/// k-nearest neighbours; falls back to nearest-neighbour completion for
/// cities left with degree < 2.
tsp::Tour greedy_edge(const tsp::Instance& instance, std::size_t k = 10);

/// Uniformly random tour.
tsp::Tour random_tour(const tsp::Instance& instance, std::uint64_t seed);

}  // namespace cim::heuristics
