// Reference ("best-known proxy") tour pipeline.
//
// The paper reports optimal ratios against Concorde's best-known lengths.
// For synthetic instances there is no published optimum, so the reference
// pipeline produces a near-optimal tour with classical heuristics:
// greedy-edge construction, then alternating 2-opt and Or-opt to a joint
// local optimum. For real TSPLIB instances whose optimum is in the
// best-known registry, that published value is used instead.
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::heuristics {

struct ReferenceOptions {
  std::size_t neighbor_k = 10;
  std::size_t rounds = 4;  ///< alternating 2-opt / Or-opt rounds
  /// Forwarded to TwoOptOptions::scan_threads and
  /// OrOptOptions::scan_threads. 1 (default) keeps the historical
  /// sequential sweeps bit-identical; >1 runs the candidate-move scans on
  /// the shared util::ThreadPool (deterministic, identical for every
  /// value > 1, but a different — equally valid — local optimum than the
  /// sequential pipeline).
  std::size_t threads = 1;
};

struct Reference {
  tsp::Tour tour;            ///< empty if a published optimum was used
  long long length = 0;      ///< reference length for ratio reporting
  bool from_registry = false;
};

/// Computes the reference for `instance` (see file comment).
Reference compute_reference(const tsp::Instance& instance,
                            const ReferenceOptions& options = {});

/// Heuristic-only variant (ignores the registry); used to measure the
/// quality of the pipeline itself.
Reference compute_heuristic_reference(const tsp::Instance& instance,
                                      const ReferenceOptions& options = {});

}  // namespace cim::heuristics
