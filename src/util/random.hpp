// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (instance generators, annealers,
// Monte-Carlo device models) draw from cim::util::Rng, a xoshiro256++
// generator seeded through splitmix64. The same seed always yields the same
// experiment on every platform — std::mt19937 with std:: distributions is
// avoided because distribution implementations differ across standard
// libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace cim::util {

/// splitmix64: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; used to derive per-component seeds.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// Seed of the `stream`-th independent parallel RNG stream derived from
/// `base`. Unlike Rng::fork() this is stateless: the mapping depends only
/// on (base, stream), so components that are updated concurrently (e.g.
/// same-colour slots in the colour-parallel annealer) get the same stream
/// regardless of worker count or execution order.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) {
  return hash_combine(base, hash_combine(0x5EED57EEAA11ULL, stream));
}

/// xoshiro256++ — fast, high-quality 64-bit PRNG with 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Unbiased uniform integer in [0, n) using Lemire's method.
  std::uint64_t below(std::uint64_t n) {
    CIM_ASSERT(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CIM_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via the polar Box–Muller method (cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Picks a uniformly random element.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    CIM_ASSERT(!items.empty());
    return items[below(items.size())];
  }

  /// Derives an independent child generator (for parallel components).
  Rng fork() { return Rng(hash_combine((*this)(), (*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_ = false;
  double spare_ = 0.0;

  friend class RngCheckpoint;
};

/// Returns a permutation of [0, n) drawn uniformly at random.
std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace cim::util
