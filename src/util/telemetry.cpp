#include "util/telemetry.hpp"

#if CIMANNEAL_TELEMETRY_ENABLED

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cim::util::telemetry {

namespace {

/// Stable small per-thread slot used to pick a counter stripe. Assigned
/// on first touch, never reused — only its modulus matters.
std::size_t thread_stripe_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------- Counter

void Counter::add(std::uint64_t delta) {
  cells_[thread_stripe_slot() % kStripes].count.fetch_add(
      delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.count.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (Cell& cell : cells_) {
    cell.count.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  CIM_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  CIM_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()),
              "histogram edges must be ascending");
  cells_ = std::make_unique<Cell[]>(bucket_count() * kStripes);
}

void Histogram::observe(double value) {
  // First bucket whose edge is >= value; past-the-end = overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) -
      edges_.begin());
  cells_[bucket * kStripes + thread_stripe_slot() % kStripes].count.fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count_in_bucket(std::size_t bucket) const {
  CIM_REQUIRE(bucket < bucket_count(), "histogram bucket out of range");
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    sum += cells_[bucket * kStripes + s].count.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < bucket_count(); ++b) {
    sum += count_in_bucket(b);
  }
  return sum;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bucket_count() * kStripes; ++i) {
    cells_[i].count.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- Registry

/// One thread's private event buffer. Appended to without locks by its
/// owning thread; read only under the quiescence contract.
struct Registry::Sink {
  /// Merge rank: 0 for non-pool threads (the coordinator runs the
  /// annealer and emits the canonical event stream), worker index + 1
  /// for shared-pool workers — a fixed property of the thread, never of
  /// scheduling.
  std::uint64_t order_key = 0;
  /// Registration sequence, the tie-break inside one rank.
  std::uint64_t seq = 0;
  std::vector<TraceEvent> events;
};

thread_local std::uint64_t Registry::t_cached_registry_ = 0;
thread_local Registry::Sink* Registry::t_cached_sink_ = nullptr;

Registry::Registry()
    : registry_id_(next_registry_id()),
      epoch_(std::chrono::steady_clock::now()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> edges) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(edges));
  } else {
    CIM_REQUIRE(slot->edges() == edges,
                "histogram re-registered with different edges: " + name);
  }
  return *slot;
}

Registry::Sink& Registry::local_sink() {
  if (t_cached_registry_ == registry_id_ && t_cached_sink_ != nullptr) {
    return *t_cached_sink_;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto sink = std::make_unique<Sink>();
  const std::size_t worker = ThreadPool::current_worker_index();
  sink->order_key = worker == ThreadPool::kNotAWorker
                        ? 0
                        : static_cast<std::uint64_t>(worker) + 1;
  sink->seq = sinks_.size();
  Sink& ref = *sink;
  sinks_.push_back(std::move(sink));
  t_cached_registry_ = registry_id_;
  t_cached_sink_ = &ref;
  return ref;
}

std::uint64_t Registry::now_ns() const {
  // Trace timestamps are observability-only: they annotate events but
  // never feed annealing state, and the golden-trajectory fingerprints
  // (test_telemetry_golden.cpp) hash event names/args, not timestamps.
  // Merge order is fixed by worker index, not by time (DESIGN.md §12).
  // NOLINT(det-taint): wall-clock feeds trace timestamps only.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Registry::record(char phase, const std::string& name,
                      std::vector<TraceArg> args) {
  Sink& sink = local_sink();
  TraceEvent event;
  event.name = name;
  event.phase = phase;
  event.ts_ns = now_ns();
  event.args = std::move(args);
  sink.events.push_back(std::move(event));
}

void Registry::begin(const std::string& name, std::vector<TraceArg> args) {
  record('B', name, std::move(args));
}

void Registry::end(const std::string& name) { record('E', name, {}); }

void Registry::instant(const std::string& name, std::vector<TraceArg> args) {
  record('i', name, std::move(args));
}

void Registry::counter_event(const std::string& name,
                             std::vector<TraceArg> args) {
  record('C', name, std::move(args));
}

std::vector<TraceEvent> Registry::merged_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Sink*> ordered;
  ordered.reserve(sinks_.size());
  for (const std::unique_ptr<Sink>& sink : sinks_) {
    ordered.push_back(sink.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Sink* a, const Sink* b) {
              if (a->order_key != b->order_key) {
                return a->order_key < b->order_key;
              }
              return a->seq < b->seq;
            });
  std::vector<TraceEvent> merged;
  for (std::size_t tid = 0; tid < ordered.size(); ++tid) {
    for (const TraceEvent& event : ordered[tid]->events) {
      merged.push_back(event);
      merged.back().tid = tid;
    }
  }
  return merged;
}

Json Registry::snapshot() const {
  Json out = Json::object();
  out["schema_version"] = kSchemaVersion;
  out["telemetry_enabled"] = true;

  const std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  out["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->value();
  }
  out["gauges"] = std::move(gauges);

  Json histograms = Json::object();
  for (const auto& [name, histogram] : histograms_) {
    Json h = Json::object();
    Json edges = Json::array();
    for (const double edge : histogram->edges()) edges.push_back(edge);
    h["edges"] = std::move(edges);
    Json counts = Json::array();
    for (std::size_t b = 0; b < histogram->bucket_count(); ++b) {
      counts.push_back(histogram->count_in_bucket(b));
    }
    h["counts"] = std::move(counts);
    h["total"] = histogram->total_count();
    histograms[name] = std::move(h);
  }
  out["histograms"] = std::move(histograms);

  // The pool's counters ride along when the pool was ever created;
  // shared_if_created() never instantiates it, so serial runs report
  // no pool section at all.
  if (const ThreadPool* pool = ThreadPool::shared_if_created()) {
    Json tp = Json::object();
    tp["width"] = static_cast<std::uint64_t>(pool->width());
    tp["threads_created"] = pool->threads_created();
    tp["tasks_executed"] = pool->tasks_executed();
    tp["tasks_stolen"] = pool->tasks_stolen();
    out["thread_pool"] = std::move(tp);
  }
  return out;
}

Json Registry::chrome_trace() const {
  Json out = Json::object();
  out["schema_version"] = kSchemaVersion;
  out["displayTimeUnit"] = "ns";
  Json events = Json::array();
  for (const TraceEvent& event : merged_events()) {
    Json e = Json::object();
    e["name"] = event.name;
    e["ph"] = std::string(1, event.phase);
    // Chrome's ts field is microseconds; keep sub-µs precision as a
    // fractional part.
    e["ts"] = static_cast<double>(event.ts_ns) / 1000.0;
    e["pid"] = 1;
    e["tid"] = event.tid;
    if (!event.args.empty()) {
      Json args = Json::object();
      for (const TraceArg& arg : event.args) args[arg.key] = arg.value;
      e["args"] = std::move(args);
    }
    events.push_back(std::move(e));
  }
  out["traceEvents"] = std::move(events);
  return out;
}

void Registry::save_snapshot(const std::string& path) const {
  snapshot().save(path);
}

void Registry::save_trace(const std::string& path) const {
  chrome_trace().save(path);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
  for (std::unique_ptr<Sink>& sink : sinks_) sink->events.clear();
}

}  // namespace cim::util::telemetry

#endif  // CIMANNEAL_TELEMETRY_ENABLED
