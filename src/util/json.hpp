// Minimal JSON writer + strict reader for machine-readable experiment
// output.
//
// Values are built bottom-up; numbers are emitted with enough precision
// to round-trip doubles. parse() is the inverse used by the telemetry
// round-trip tests and artifact validators: it accepts standard JSON,
// keeps object fields in document order, and reads numbers without a
// fraction/exponent as integers (matching the writer's
// integer/double distinction).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cim::util {

class Json {
 public:
  /// Scalar constructors.
  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(long long value);
  Json(std::uint64_t value);  // size_t resolves here on LP64
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  /// Containers.
  static Json object();
  static Json array();

  /// Parses a complete JSON document; throws cim::Error on malformed
  /// input or trailing garbage.
  static Json parse(const std::string& text);

  /// Object field access (creates the field; object kind required).
  Json& operator[](const std::string& key);
  /// Array append.
  void push_back(Json value);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_integer() const { return kind_ == Kind::kInteger; }
  /// True for both floating-point and integer numbers.
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  std::size_t size() const;

  /// Read accessors; each throws cim::Error on a kind mismatch.
  bool boolean() const;
  /// Numeric value; integers promote to double.
  double number() const;
  long long integer() const;
  const std::string& str() const;

  /// Object lookup: nullptr when the key is absent (find) or a thrown
  /// cim::Error (at).
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Array element / object field by position (document order).
  const Json& at(std::size_t index) const;
  const std::string& key_at(std::size_t index) const;

  /// Serialises; `indent` < 0 gives compact output.
  std::string dump(int indent = 2) const;

  /// Writes to a file; throws cim::Error on failure.
  void save(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kObject,
                    kArray };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  // Insertion-ordered object fields.
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
};

}  // namespace cim::util
