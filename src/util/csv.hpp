// CSV emission (for plotting the reproduced figures) and a small CSV reader
// used by tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cim::util {

/// Writes rows with uniform arity; quotes fields when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  std::string render() const;
  /// Writes the CSV to `path`; throws cim::Error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (RFC-4180 quoting); returns rows including the header.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace cim::util
