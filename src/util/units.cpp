#include "util/units.hpp"

#include <cmath>
#include <sstream>

namespace cim::util {

namespace {

std::string fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

struct Scale {
  double factor;
  const char* suffix;
};

std::string scaled(double value, const Scale* scales, std::size_t count,
                   int precision) {
  for (std::size_t i = 0; i < count; ++i) {
    if (std::abs(value) >= scales[i].factor) {
      return fixed(value / scales[i].factor, precision) + " " +
             scales[i].suffix;
    }
  }
  return fixed(value / scales[count - 1].factor, precision) + " " +
         scales[count - 1].suffix;
}

}  // namespace

std::string format_bytes(double bytes, int precision) {
  static constexpr Scale kScales[] = {
      {1e12, "TB"}, {1e9, "GB"}, {1e6, "MB"}, {1e3, "kB"}, {1.0, "B"}};
  return scaled(bytes, kScales, std::size(kScales), precision);
}

std::string format_bits(double bits, int precision) {
  static constexpr Scale kScales[] = {
      {1e12, "Tb"}, {1e9, "Gb"}, {1e6, "Mb"}, {1e3, "kb"}, {1.0, "b"}};
  return scaled(bits, kScales, std::size(kScales), precision);
}

std::string format_seconds(double seconds, int precision) {
  if (seconds >= 86400.0) return fixed(seconds / 86400.0, precision) + " d";
  if (seconds >= 3600.0) return fixed(seconds / 3600.0, precision) + " h";
  if (seconds >= 60.0) return fixed(seconds / 60.0, precision) + " min";
  static constexpr Scale kScales[] = {
      {1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"}, {1e-12, "ps"}};
  return scaled(seconds, kScales, std::size(kScales), precision);
}

std::string format_watts(double watts, int precision) {
  static constexpr Scale kScales[] = {
      {1.0, "W"}, {1e-3, "mW"}, {1e-6, "uW"}, {1e-9, "nW"}, {1e-12, "pW"}};
  return scaled(watts, kScales, std::size(kScales), precision);
}

std::string format_joules(double joules, int precision) {
  static constexpr Scale kScales[] = {{1.0, "J"},   {1e-3, "mJ"}, {1e-6, "uJ"},
                                      {1e-9, "nJ"}, {1e-12, "pJ"}, {1e-15, "fJ"}};
  return scaled(joules, kScales, std::size(kScales), precision);
}

std::string format_area(SquareMicron area, int precision) {
  if (area.um2() >= 1e6) return fixed(area.mm2(), precision) + " mm^2";
  return fixed(area.um2(), precision) + " um^2";
}

std::string format_factor(double factor, int precision) {
  if (factor >= 1e4 || (factor > 0.0 && factor < 1e-2)) {
    std::ostringstream os;
    os.setf(std::ios::scientific);
    os.precision(precision);
    os << factor << " x";
    return os.str();
  }
  return fixed(factor, precision) + " x";
}

}  // namespace cim::util
