#include "util/sha256.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace cim::util {

namespace {

// FIPS 180-4 round constants: first 32 bits of the fractional parts of
// the cube roots of the first 64 primes.
constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int k) {
  return std::rotr(x, k);
}

constexpr char kHex[] = "0123456789abcdef";

}  // namespace

void Sha256::reset() {
  // Initial hash values: fractional parts of the square roots of the
  // first 8 primes.
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::compress(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w{};
  for (std::size_t t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (std::size_t t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (std::size_t t = 0; t < 64; ++t) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[t] + w[t];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ < 64) return;
    compress(buffer_.data());
    buffered_ = 0;
  }
  while (offset + 64 <= data.size()) {
    compress(data.data() + offset);
    offset += 64;
  }
  const std::size_t rest = data.size() - offset;
  if (rest > 0) {
    std::memcpy(buffer_.data(), data.data() + offset, rest);
    buffered_ = rest;
  }
}

std::array<std::uint8_t, 32> Sha256::digest() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Pad: 0x80, zeros to 56 mod 64, then the big-endian bit length.
  const std::uint8_t one = 0x80;
  update(std::span<const std::uint8_t>(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> length{};
  for (std::size_t i = 0; i < 8; ++i) {
    length[i] = static_cast<std::uint8_t>(bit_length >> (56 - i * 8));
  }
  update(length);
  CIM_ASSERT(buffered_ == 0);
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::string Sha256::hex_digest() {
  const auto raw = digest();
  std::string hex;
  hex.reserve(64);
  for (const std::uint8_t byte : raw) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0x0F]);
  }
  return hex;
}

std::string sha256_hex(std::span<const std::uint8_t> data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.hex_digest();
}

std::string sha256_hex(std::string_view text) {
  Sha256 hasher;
  hasher.update(text);
  return hasher.hex_digest();
}

std::string sha256_tagged(const std::string& hex) {
  return "sha256:" + hex;
}

std::string hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CIM_REQUIRE(in.good(), "hash_file: cannot open " + path);
  Sha256 hasher;
  std::array<char, 1 << 16> chunk{};
  while (in.good()) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    hasher.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(chunk.data()),
        static_cast<std::size_t>(got)));
  }
  CIM_REQUIRE(!in.bad(), "hash_file: read error on " + path);
  return sha256_tagged(hasher.hex_digest());
}

}  // namespace cim::util
