#include "util/random.hpp"

#include <cmath>
#include <numeric>

namespace cim::util {

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Polar Box–Muller: rejection-sample a point in the unit disc.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
    // Marsaglia rejection: s == 0.0 is the exact degenerate sample that
    // would feed log(0) below; a tolerance would bias the distribution.
  } while (s >= 1.0 || s == 0.0);  // NOLINT(unit-float-eq)
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  rng.shuffle(perm);
  return perm;
}

}  // namespace cim::util
