// Portable data-parallel kernels for the bit-sliced CIM datapath.
//
// The bit-sliced swap kernel (cim/bitslice.hpp, DESIGN.md §14) reduces a
// weight bit-plane against a packed 0/1 input vector: one 64-bit word
// carries 64 NOR-cell products, so the whole reduction is AND + popcount
// per word and a shift-and-add across planes. This header owns the three
// primitives that loop over packed words:
//
//   * and_popcount      — Σᵢ popcount(a[i] & b[i])
//   * mac_bitplanes     — Σ_b and_popcount(input, plane_b) << b
//   * plane_popcounts   — the per-plane sums (the AdderTree counter path)
//
// Backend policy: every function has a portable scalar-u64 body (already
// 64-way data-parallel — SIMD within a register). On x86-64 two
// accelerated bodies are compiled via `target(...)` function attributes
// and selected at runtime with __builtin_cpu_supports, so the build
// itself needs no -mavx2/-mpopcnt and stays runnable on any host: a
// `target("popcnt")` tier (baseline x86-64 lacks the popcnt instruction,
// so std::popcount otherwise lowers to a libgcc byte-table call — an
// order of magnitude per word) and a `target("avx2")` tier for long
// planes. On AArch64 a NEON body is compiled in directly (NEON is
// baseline there). All paths produce bit-identical results — popcounts
// are exact integer arithmetic — which is what lets the annealer's
// determinism contract span backends.
//
// CIMANNEAL_PORTABLE_SIMD (CMake: -DCIMANNEAL_DISABLE_SIMD=ON) forces the
// portable body everywhere; scripts/ci.sh runs the kernel test suite in
// that configuration to keep the fallback honest.
//
// Raw vector intrinsics are confined to this header by the cimlint rule
// `simd-intrinsics-confined`: every other file expresses data parallelism
// through these functions, so a new backend lands in exactly one place.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if !defined(CIMANNEAL_PORTABLE_SIMD)
#if defined(__x86_64__) && defined(__GNUC__)
#define CIMANNEAL_SIMD_X86_DISPATCH 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define CIMANNEAL_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace cim::util::simd {

inline std::uint64_t popcount64(std::uint64_t x) {
  return static_cast<std::uint64_t>(std::popcount(x));
}

namespace detail {

inline std::uint64_t and_popcount_portable(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += popcount64(a[i] & b[i]);
  return acc;
}

#if defined(CIMANNEAL_SIMD_X86_DISPATCH)

inline bool have_avx2() {
  static const bool cached = __builtin_cpu_supports("avx2") != 0;
  return cached;
}

inline bool have_popcnt() {
  static const bool cached = __builtin_cpu_supports("popcnt") != 0;
  return cached;
}

/// Hardware-popcount bodies. Self-contained loops (a target-attribute
/// function only lowers its own body with the extended ISA, not inline
/// callees compiled elsewhere), duplicating the portable loops verbatim.
__attribute__((target("popcnt"))) inline std::uint64_t and_popcount_popcnt(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return acc;
}

__attribute__((target("popcnt"))) inline std::uint64_t mac_bitplanes_popcnt(
    const std::uint64_t* input, const std::uint64_t* planes,
    std::uint32_t words, std::uint32_t bits) {
  std::uint64_t acc = 0;
  if (words == 1) {
    const std::uint64_t in = input[0];
    for (std::uint32_t b = 0; b < bits; ++b) {
      acc += static_cast<std::uint64_t>(std::popcount(in & planes[b])) << b;
    }
    return acc;
  }
  for (std::uint32_t b = 0; b < bits; ++b) {
    const std::uint64_t* plane = planes + static_cast<std::size_t>(b) * words;
    std::uint64_t sum = 0;
    for (std::uint32_t w = 0; w < words; ++w) {
      sum += static_cast<std::uint64_t>(std::popcount(input[w] & plane[w]));
    }
    acc += sum << b;
  }
  return acc;
}

__attribute__((target("popcnt"))) inline void mac_bitplanes_batch_popcnt(
    const std::uint64_t* const* inputs, const std::uint64_t* const* planes,
    std::uint32_t words, std::uint32_t bits, std::int64_t* out,
    std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t* in = inputs[k];
    const std::uint64_t* pl = planes[k];
    std::uint64_t acc = 0;
    if (words == 1) {
      const std::uint64_t w0 = in[0];
      for (std::uint32_t b = 0; b < bits; ++b) {
        acc += static_cast<std::uint64_t>(std::popcount(w0 & pl[b])) << b;
      }
    } else {
      for (std::uint32_t b = 0; b < bits; ++b) {
        const std::uint64_t* plane = pl + static_cast<std::size_t>(b) * words;
        std::uint64_t sum = 0;
        for (std::uint32_t w = 0; w < words; ++w) {
          sum += static_cast<std::uint64_t>(std::popcount(in[w] & plane[w]));
        }
        acc += sum << b;
      }
    }
    out[k] = static_cast<std::int64_t>(acc);
  }
}

__attribute__((target("popcnt"))) inline void plane_popcounts_popcnt(
    const std::uint64_t* input, const std::uint64_t* planes,
    std::uint32_t words, std::uint32_t bits, std::uint32_t* out) {
  for (std::uint32_t b = 0; b < bits; ++b) {
    const std::uint64_t* plane = planes + static_cast<std::size_t>(b) * words;
    std::uint64_t sum = 0;
    for (std::uint32_t w = 0; w < words; ++w) {
      sum += static_cast<std::uint64_t>(std::popcount(input[w] & plane[w]));
    }
    out[b] = static_cast<std::uint32_t>(sum);
  }
}

/// AVX2 body (Mula's nibble-LUT popcount): four words per step, the
/// per-byte counts accumulated with an 8-bit table lookup and summed via
/// _mm256_sad_epu8. Compiled with the target attribute so the rest of the
/// TU keeps the build's baseline ISA.
__attribute__((target("avx2"))) inline std::uint64_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) total += popcount64(a[i] & b[i]);
  return total;
}

#elif defined(CIMANNEAL_SIMD_NEON)

inline std::uint64_t and_popcount_neon(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint8x16_t v = vreinterpretq_u8_u64(vandq_u64(va, vb));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) total += popcount64(a[i] & b[i]);
  return total;
}

#endif

}  // namespace detail

/// The backend the word-loop kernels resolve to on this host. Purely
/// informational (reports / bench metadata): every backend returns
/// bit-identical values.
inline const char* backend() {
#if defined(CIMANNEAL_SIMD_X86_DISPATCH)
  if (detail::have_avx2()) return "avx2";
  if (detail::have_popcnt()) return "popcnt";
  return "portable";
#elif defined(CIMANNEAL_SIMD_NEON)
  return "neon";
#else
  return "portable";
#endif
}

/// Σᵢ popcount(a[i] & b[i]) over n packed words — one bit-plane of 14T
/// NOR products reduced to its sum. The vector bodies only pay off past a
/// few words; short inputs take the scalar loop directly.
inline std::uint64_t and_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
#if defined(CIMANNEAL_SIMD_X86_DISPATCH)
  if (n >= 8 && detail::have_avx2()) {
    return detail::and_popcount_avx2(a, b, n);
  }
  if (detail::have_popcnt()) return detail::and_popcount_popcnt(a, b, n);
#elif defined(CIMANNEAL_SIMD_NEON)
  if (n >= 4) return detail::and_popcount_neon(a, b, n);
#endif
  return detail::and_popcount_portable(a, b, n);
}

/// Full bit-sliced MAC of one weight column: `planes` holds `bits`
/// contiguous bit-planes of `words` packed words each (LSB plane first),
/// `input` is the packed 0/1 row vector. Returns
/// Σ_b popcount(input & plane_b) << b — exactly the adder-tree
/// shift-and-add of the dense datapath.
inline std::uint64_t mac_bitplanes(const std::uint64_t* input,
                                   const std::uint64_t* planes,
                                   std::uint32_t words, std::uint32_t bits) {
#if defined(CIMANNEAL_SIMD_X86_DISPATCH)
  // Short planes (every hardware window below p = 22) are dominated by the
  // popcount itself, not the word loop — the popcnt tier wins there; long
  // planes route through and_popcount's AVX2 body below.
  if (words < 8 && detail::have_popcnt()) {
    return detail::mac_bitplanes_popcnt(input, planes, words, bits);
  }
#endif
  std::uint64_t acc = 0;
  if (words == 1) {
    // The common window sizes (p ≤ 7 ⇒ rows ≤ 63) fit one word; keep the
    // loop free of inner-loop setup.
    const std::uint64_t in = input[0];
    for (std::uint32_t b = 0; b < bits; ++b) {
      acc += popcount64(in & planes[b]) << b;
    }
    return acc;
  }
  for (std::uint32_t b = 0; b < bits; ++b) {
    acc += and_popcount(input, planes + static_cast<std::size_t>(b) * words,
                        words)
           << b;
  }
  return acc;
}

/// Batched bit-sliced MACs: out[k] = mac_bitplanes(inputs[k], planes[k],
/// words, bits) for k in [0, n). One dispatch and one (non-inlinable)
/// target-function call for the whole batch — the per-MAC call overhead
/// dominates small windows, and the multi-replica swap evaluation issues
/// 4·replicas MACs at a time.
inline void mac_bitplanes_batch(const std::uint64_t* const* inputs,
                                const std::uint64_t* const* planes,
                                std::uint32_t words, std::uint32_t bits,
                                std::int64_t* out, std::size_t n) {
#if defined(CIMANNEAL_SIMD_X86_DISPATCH)
  if (words < 8 && detail::have_popcnt()) {
    detail::mac_bitplanes_batch_popcnt(inputs, planes, words, bits, out, n);
    return;
  }
#endif
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = static_cast<std::int64_t>(
        mac_bitplanes(inputs[k], planes[k], words, bits));
  }
}

/// Per-plane product sums of one column — the same reduction as
/// mac_bitplanes but reported plane-by-plane, feeding
/// AdderTree::shift_and_add_sparse so the bit-level backend charges its
/// reduction counters identically on the packed path.
inline void plane_popcounts(const std::uint64_t* input,
                            const std::uint64_t* planes, std::uint32_t words,
                            std::uint32_t bits, std::uint32_t* out) {
#if defined(CIMANNEAL_SIMD_X86_DISPATCH)
  if (words < 8 && detail::have_popcnt()) {
    detail::plane_popcounts_popcnt(input, planes, words, bits, out);
    return;
  }
#endif
  for (std::uint32_t b = 0; b < bits; ++b) {
    out[b] = static_cast<std::uint32_t>(and_popcount(
        input, planes + static_cast<std::size_t>(b) * words, words));
  }
}

}  // namespace cim::util::simd
