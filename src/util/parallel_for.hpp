// Deterministic data-parallel loops over ThreadPool.
//
// The determinism contract (DESIGN.md §11): chunk boundaries are a pure
// function of (n, grain) — never of the pool width, the worker count, or
// steal order — and parallel_reduce combines chunk results serially in
// ascending chunk index. Two runs with the same inputs therefore produce
// bit-identical results on 1, 2 or 64 workers, including for
// non-associative reductions (floating-point sums, hash chains).
//
// When the loop is too small to split (n <= grain) or the pool has no
// workers, the body runs inline on the caller in index order; no pool —
// and in particular no lazily-created shared pool thread — is touched,
// so serial workloads stay thread-free.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace cim::util {

/// Number of chunks [0, n) splits into at the given grain. Pure function
/// of (n, grain) — the anchor of the determinism contract.
constexpr std::size_t parallel_chunk_count(std::size_t n, std::size_t grain) {
  const std::size_t g = grain > 0 ? grain : 1;
  return (n + g - 1) / g;
}

/// Invokes body(begin, end) over consecutive chunks of [0, n) of at most
/// `grain` indices. Chunks run concurrently on `pool`; a single chunk
/// runs inline.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t n, std::size_t grain,
                         const Body& body) {
  const std::size_t g = grain > 0 ? grain : 1;
  const std::size_t chunks = parallel_chunk_count(n, g);
  if (chunks <= 1) {
    if (n > 0) body(std::size_t{0}, n);
    return;
  }
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = begin + g < n ? begin + g : n;
    body(begin, end);
  });
}

/// Chunked loop on the shared pool — but fully inline (shared pool never
/// constructed) when the loop is too small to split.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t grain, const Body& body) {
  const std::size_t g = grain > 0 ? grain : 1;
  if (parallel_chunk_count(n, g) <= 1) {
    if (n > 0) body(std::size_t{0}, n);
    return;
  }
  parallel_for_chunks(ThreadPool::shared(), n, g, body);
}

/// Element-wise parallel loop: body(i) for i in [0, n), chunked by grain.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  const Body& body) {
  parallel_for_chunks(pool, n, grain,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, const Body& body) {
  parallel_for_chunks(n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Maps chunks of [0, n) to partial values and folds them serially in
/// ascending chunk index: combine(combine(identity, r0), r1)... — the
/// reduction order is fixed by index, so even non-associative combines
/// are reproducible across worker counts. map(begin, end) -> T runs
/// concurrently; combine runs on the caller.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, std::size_t grain,
                  T identity, const Map& map, const Combine& combine) {
  const std::size_t g = grain > 0 ? grain : 1;
  const std::size_t chunks = parallel_chunk_count(n, g);
  if (chunks <= 1) {
    if (n == 0) return identity;
    return combine(std::move(identity), map(std::size_t{0}, n));
  }
  std::vector<T> partial(chunks);
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = begin + g < n ? begin + g : n;
    partial[c] = map(begin, end);
  });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T identity,
                  const Map& map, const Combine& combine) {
  const std::size_t g = grain > 0 ? grain : 1;
  if (parallel_chunk_count(n, g) <= 1) {
    if (n == 0) return identity;
    return combine(std::move(identity), map(std::size_t{0}, n));
  }
  return parallel_reduce(ThreadPool::shared(), n, g, std::move(identity),
                         map, combine);
}

}  // namespace cim::util
