#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace cim::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CIM_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CIM_ASSERT_MSG(cells.size() == header_.size(),
                 "row arity must match header");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::add_footnote(std::string note) {
  footnotes_.push_back(std::move(note));
}

void Table::set_title(std::string title) { title_ = std::move(title); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const auto w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  }();

  const auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  out += rule;
  out += format_row(header_);
  out += rule;
  for (const auto& row : rows_) {
    out += row.separator ? rule : format_row(row.cells);
  }
  out += rule;
  for (const auto& note : footnotes_) {
    out += "  * " + note + '\n';
  }
  return out;
}

void Table::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace cim::util
