// Minimal levelled logging to stderr; experiments print their tables to
// stdout, so diagnostics must stay out of the way.
#pragma once

#include <sstream>
#include <string>

namespace cim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn, or
/// the value of the CIMANNEAL_LOG environment variable (debug/info/warn/
/// error/off) when set.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cim::util

#define CIM_LOG_DEBUG ::cim::util::detail::LogLine(::cim::util::LogLevel::kDebug)
#define CIM_LOG_INFO ::cim::util::detail::LogLine(::cim::util::LogLevel::kInfo)
#define CIM_LOG_WARN ::cim::util::detail::LogLine(::cim::util::LogLevel::kWarn)
#define CIM_LOG_ERROR ::cim::util::detail::LogLine(::cim::util::LogLevel::kError)
