#include "util/args.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace cim::util {

Args::Args(int argc, const char* const* argv) {
  CIM_ASSERT(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      named_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      named_[token] = argv[++i];
    } else {
      named_[token] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& name) const {
  return named_.count(name) != 0;
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw ConfigError("option --" + name + " expects an integer, got '" + *v +
                      "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw ConfigError("option --" + name + " expects a number, got '" + *v +
                      "'");
  }
}

bool Args::env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  const std::string s = v;
  return !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
}

}  // namespace cim::util
