#include "util/csv.hpp"

#include <fstream>

#include "util/error.hpp"

namespace cim::util {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void render_row(const std::vector<std::string>& cells, std::string& out) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    out += quote(cells[i]);
  }
  out += '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CIM_ASSERT(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  CIM_ASSERT_MSG(cells.size() == header_.size(),
                 "CSV row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  std::string out;
  render_row(header_, out);
  for (const auto& row : rows_) render_row(row, out);
  return out;
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open CSV output file: " + path);
  const std::string text = render();
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw Error("failed writing CSV output file: " + path);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    row.push_back(field);
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        row_has_content = true;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace cim::util
