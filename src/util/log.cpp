#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cim::util {

namespace {

LogLevel parse_level(const char* text) {
  const std::string s = text ? text : "";
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& threshold_storage() {
  static LogLevel level = parse_level(std::getenv("CIMANNEAL_LOG"));
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage(); }

void set_log_threshold(LogLevel level) { threshold_storage() = level; }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_threshold()) return;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[cimanneal %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace cim::util
