// Error-handling primitives shared by every cimanneal library.
//
// The library reports recoverable misuse (bad files, infeasible configs)
// via exceptions derived from cim::Error, and hard internal invariants via
// CIM_ASSERT, which is active in all build types: a violated invariant in a
// hardware model would silently corrupt an experiment, so we never compile
// these checks out.
#pragma once

#include <stdexcept>
#include <string>

namespace cim {

/// Base class for all recoverable cimanneal errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unsupported input data (e.g. a broken TSPLIB file).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A configuration that cannot be realised (e.g. p_max < 1).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Internal invariant failure; thrown by CIM_ASSERT.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace cim

/// Always-on invariant check. `msg` is optional extra context.
#define CIM_ASSERT(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::cim::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CIM_ASSERT_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) ::cim::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Validate user-facing preconditions; throws ConfigError.
#define CIM_REQUIRE(expr, msg)                        \
  do {                                                \
    if (!(expr)) throw ::cim::ConfigError(msg);       \
  } while (false)
