// Streaming statistics and histograms used by the Monte-Carlo device model
// and by the experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cim::util {

/// Welford-style streaming accumulator: mean / variance / min / max without
/// storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range histogram with uniform bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t bin) const;
  /// Fraction of samples at or below x (linear interpolation within a bin).
  double cdf(double x) const;
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Exact quantile over a stored sample set (for small/medium sample counts).
double quantile(std::vector<double> samples, double q);

/// Pearson correlation of two equally sized series.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Geometric mean of strictly positive values.
double geometric_mean(const std::vector<double>& xs);

}  // namespace cim::util
