// ASCII table rendering for the benchmark harnesses. Every bench binary
// prints paper-style tables through this class so the output format is
// uniform and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cim::util {

/// Column-aligned ASCII table with an optional title and footnotes.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal separator row.
  void add_separator();
  void add_footnote(std::string note);
  void set_title(std::string title);

  std::size_t rows() const { return rows_.size(); }

  std::string render() const;
  /// Renders and writes to stdout.
  void print() const;

  /// Numeric formatting helpers for cells.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 1);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<std::string> footnotes_;
};

}  // namespace cim::util
