// Process-wide telemetry: metrics registry + trace events.
//
// Two data planes, one compile-time gate (CIMANNEAL_TELEMETRY):
//
//  * Metrics — monotonic `Counter`s, last-write `Gauge`s and fixed-edge
//    `Histogram`s, looked up by name in the global `Registry`. Updates
//    are lock-free (striped relaxed atomics); only the first lookup of a
//    name takes the registry mutex, so callers hoist the reference out
//    of hot loops.
//  * Trace events — begin/end/instant/counter events appended to
//    per-thread sinks without any cross-thread synchronisation.
//    `merged_events()` interleaves the sinks in *deterministic* order:
//    sinks owned by shared-pool workers sort by their fixed worker
//    index (then registration order), non-pool threads (the
//    coordinator) come first. Event ordering therefore never depends on
//    scheduling — the same contract parallel_for gives FP reductions
//    (DESIGN.md §11, §12).
//
// When the build sets CIMANNEAL_TELEMETRY=OFF every type below becomes
// an empty inline stub and the TELEM_* macros expand to `(void)0`:
// no atomics, no strings, no branches survive in the hot paths. Hot
// per-iteration emission sites additionally guard with
// `if constexpr (telemetry::kEnabled)` so argument packs are never even
// constructed.
//
// Export: `snapshot()` → versioned JSON metrics dump, `chrome_trace()`
// → Chrome `chrome://tracing` / Perfetto "traceEvents" JSON. Snapshot
// and merge require quiescence: no concurrent writers while exporting
// or resetting (the same join-before-merge rule every parallel site
// already obeys).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/thread_annotations.hpp"

#ifndef CIMANNEAL_TELEMETRY_ENABLED
#define CIMANNEAL_TELEMETRY_ENABLED 1
#endif

namespace cim::util::telemetry {

/// Compile-time gate; `if constexpr (telemetry::kEnabled)` removes hot
/// emission sites entirely when the build disables telemetry.
inline constexpr bool kEnabled = CIMANNEAL_TELEMETRY_ENABLED != 0;

/// Version stamped into every snapshot / trace export. Bump when the
/// JSON layout changes shape (DESIGN.md §12 documents the schema).
inline constexpr long long kSchemaVersion = 1;

/// One key/value attachment on a trace event. Values are numeric only:
/// every quantity the annealer traces (energies, counts, epoch ids) is
/// a number, and it keeps events POD-cheap to record.
struct TraceArg {
  std::string key;
  double value = 0.0;
};

/// One trace event. `phase` uses the Chrome trace phase letters:
/// 'B' begin, 'E' end, 'C' counter sample, 'i' instant.
/// `tid` is assigned at merge time (the sink's deterministic position),
/// not at record time — see Registry::merged_events().
struct TraceEvent {
  std::string name;
  char phase = 'i';
  std::uint64_t ts_ns = 0;
  std::uint64_t tid = 0;
  std::vector<TraceArg> args;
};

#if CIMANNEAL_TELEMETRY_ENABLED

/// Monotonic counter. add() is wait-free after the first registry
/// lookup: each thread increments one of kStripes cache-line-padded
/// cells picked by a stable per-thread slot, so concurrent writers
/// never contend on one line. value() sums the stripes (exact for
/// unsigned arithmetic in any order).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;
  /// Zeroes every stripe. Requires quiescence (no concurrent add()).
  void reset();

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// Last-write-wins double value (stored as bits in one atomic word).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) {
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Histogram over fixed ascending bucket edges. A value lands in the
/// first bucket whose edge is >= value; values above the last edge land
/// in the trailing overflow bucket, so bucket_count() has
/// edges.size() + 1 valid indices. Buckets are striped like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);
  const std::vector<double>& edges() const { return edges_; }
  std::size_t bucket_count() const { return edges_.size() + 1; }
  std::uint64_t count_in_bucket(std::size_t bucket) const;
  std::uint64_t total_count() const;
  void reset();

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
  };

  std::vector<double> edges_;
  // bucket-major: cells_[bucket * kStripes + stripe].
  std::unique_ptr<Cell[]> cells_;
};

/// The process-wide metric + trace-event store. All names are flat
/// dotted strings ("anneal.swaps_accepted"); the snapshot sorts them,
/// so output order never depends on registration order.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The default instance every TELEM_* macro targets.
  static Registry& global();

  /// Finds or creates the named metric. References stay valid for the
  /// registry's lifetime (reset() clears values, never storage), so
  /// hot loops look up once and update lock-free after.
  Counter& counter(const std::string& name) CIM_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) CIM_EXCLUDES(mu_);
  /// Edges must be ascending and non-empty; repeated lookups of one
  /// name must pass identical edges.
  Histogram& histogram(const std::string& name, std::vector<double> edges)
      CIM_EXCLUDES(mu_);

  /// Trace-event emission. Each call appends to the calling thread's
  /// private sink — no synchronisation with other emitters.
  void begin(const std::string& name, std::vector<TraceArg> args = {});
  void end(const std::string& name);
  void instant(const std::string& name, std::vector<TraceArg> args = {});
  /// A Chrome 'C' sample: a named set of series values at one instant.
  void counter_event(const std::string& name, std::vector<TraceArg> args);

  /// All recorded events, sinks concatenated in deterministic order:
  /// non-pool threads first (registration order), then shared-pool
  /// workers by ascending worker index. Within a sink, program order.
  /// `tid` on the returned events is the sink's position in that order.
  /// Requires quiescence.
  std::vector<TraceEvent> merged_events() const CIM_EXCLUDES(mu_);

  /// Versioned metrics dump: schema_version, counters/gauges/histograms
  /// (name-sorted), plus the shared thread pool's counters when the
  /// pool exists. Requires quiescence.
  Json snapshot() const CIM_EXCLUDES(mu_);

  /// Chrome trace ("traceEvents") JSON built from merged_events().
  Json chrome_trace() const;

  /// snapshot()/chrome_trace() written to files (util::Json::save).
  void save_snapshot(const std::string& path) const;
  void save_trace(const std::string& path) const;

  /// Zeroes every metric and drops every recorded event. Metric
  /// references and per-thread sinks stay valid. Requires quiescence.
  void reset() CIM_EXCLUDES(mu_);

 private:
  friend class Scope;
  struct Sink;

  Sink& local_sink() CIM_EXCLUDES(mu_);
  void record(char phase, const std::string& name,
              std::vector<TraceArg> args) CIM_EXCLUDES(mu_);
  std::uint64_t now_ns() const;

  /// Cache of the calling thread's sink in this registry, so repeated
  /// emission is lock-free after the thread's first event.
  static thread_local std::uint64_t t_cached_registry_;
  static thread_local Sink* t_cached_sink_;

  const std::uint64_t registry_id_;
  const std::chrono::steady_clock::time_point epoch_;

  // mu_ serialises registry *structure* (name lookup, sink registration,
  // export); metric updates and event appends are lock-free after the
  // first lookup. The maps own the metrics; the pointees stay valid and
  // are updated outside the lock (striped atomics / per-thread sinks),
  // which is why the members — not their pointees — are guarded.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CIM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CIM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CIM_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Sink>> sinks_ CIM_GUARDED_BY(mu_);
};

/// RAII begin/end pair on one registry.
class Scope {
 public:
  Scope(Registry& registry, std::string name, std::vector<TraceArg> args = {})
      : registry_(registry), name_(std::move(name)) {
    registry_.begin(name_, std::move(args));
  }
  ~Scope() { registry_.end(name_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Registry& registry_;
  std::string name_;
};

#else  // !CIMANNEAL_TELEMETRY_ENABLED — inert stubs, same surface.

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;
  void set(double) {}
  double value() const { return 0.0; }
  void reset() {}
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  void observe(double) {}
  const std::vector<double>& edges() const { return edges_; }
  std::size_t bucket_count() const { return 0; }
  std::uint64_t count_in_bucket(std::size_t) const { return 0; }
  std::uint64_t total_count() const { return 0; }
  void reset() {}

 private:
  std::vector<double> edges_;
};

class Registry {
 public:
  static Registry& global() {
    static Registry registry;
    return registry;
  }

  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<double>) {
    return histogram_;
  }

  void begin(const std::string&, std::vector<TraceArg> = {}) {}
  void end(const std::string&) {}
  void instant(const std::string&, std::vector<TraceArg> = {}) {}
  void counter_event(const std::string&, std::vector<TraceArg>) {}

  std::vector<TraceEvent> merged_events() const { return {}; }

  Json snapshot() const {
    Json out = Json::object();
    out["schema_version"] = kSchemaVersion;
    out["telemetry_enabled"] = false;
    return out;
  }
  Json chrome_trace() const {
    Json out = Json::object();
    out["schema_version"] = kSchemaVersion;
    out["telemetry_enabled"] = false;
    out["traceEvents"] = Json::array();
    return out;
  }
  void save_snapshot(const std::string& path) const { snapshot().save(path); }
  void save_trace(const std::string& path) const { chrome_trace().save(path); }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class Scope {
 public:
  Scope(Registry&, std::string, std::vector<TraceArg> = {}) {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

#endif  // CIMANNEAL_TELEMETRY_ENABLED

}  // namespace cim::util::telemetry

// Convenience macros targeting Registry::global(). Policy
// (cimlint `telemetry-in-header`): these must not appear in public
// headers — instrumentation belongs in .cpp files so header consumers
// never pay for (or depend on) telemetry.
// NOLINTNEXTLINE(telemetry-in-header): the definitions themselves.
#define TELEM_CONCAT_INNER(a, b) a##b
#define TELEM_CONCAT(a, b) TELEM_CONCAT_INNER(a, b)

#if CIMANNEAL_TELEMETRY_ENABLED
/// Begin/end trace scope covering the rest of the enclosing block.
#define TELEM_SCOPE(name)                               \
  const ::cim::util::telemetry::Scope TELEM_CONCAT(     \
      telem_scope_, __LINE__)(                          \
      ::cim::util::telemetry::Registry::global(), (name))
/// Same, with `{"key", value}` argument pairs attached to the begin.
#define TELEM_SCOPE_ARGS(name, ...)                     \
  const ::cim::util::telemetry::Scope TELEM_CONCAT(     \
      telem_scope_, __LINE__)(                          \
      ::cim::util::telemetry::Registry::global(), (name), {__VA_ARGS__})
#define TELEM_INSTANT(name, ...)                        \
  ::cim::util::telemetry::Registry::global().instant((name), {__VA_ARGS__})
#define TELEM_COUNTER_EVENT(name, ...)                  \
  ::cim::util::telemetry::Registry::global().counter_event((name),  \
                                                           {__VA_ARGS__})
#define TELEM_COUNTER_ADD(name, delta)                  \
  ::cim::util::telemetry::Registry::global().counter((name)).add((delta))
#define TELEM_GAUGE_SET(name, value)                    \
  ::cim::util::telemetry::Registry::global().gauge((name)).set((value))
#else
#define TELEM_SCOPE(name) static_cast<void>(0)
#define TELEM_SCOPE_ARGS(name, ...) static_cast<void>(0)
#define TELEM_INSTANT(name, ...) static_cast<void>(0)
#define TELEM_COUNTER_EVENT(name, ...) static_cast<void>(0)
#define TELEM_COUNTER_ADD(name, delta) static_cast<void>(0)
#define TELEM_GAUGE_SET(name, value) static_cast<void>(0)
#endif
