// Minimal command-line parsing shared by the examples and bench binaries.
// Supports `--name value`, `--name=value`, boolean `--flag`, and collects
// positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cim::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name) const { return has(name); }

  /// Environment helper: true when the variable is set to a truthy value.
  static bool env_flag(const char* name);

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace cim::util
