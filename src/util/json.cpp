#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/error.hpp"

namespace cim::util {

Json::Json(long long value) : kind_(Kind::kInteger), integer_(value) {}

Json::Json(std::uint64_t value) : kind_(Kind::kInteger) {
  CIM_ASSERT_MSG(value <= 0x7FFFFFFFFFFFFFFFULL,
                 "unsigned value exceeds JSON integer range");
  integer_ = static_cast<long long>(value);
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::operator[](const std::string& key) {
  CIM_ASSERT_MSG(kind_ == Kind::kObject, "operator[] needs an object");
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(key, Json());
  return fields_.back().second;
}

void Json::push_back(Json value) {
  CIM_ASSERT_MSG(kind_ == Kind::kArray, "push_back needs an array");
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return fields_.size();
  if (kind_ == Kind::kArray) return items_.size();
  return 0;
}

bool Json::boolean() const {
  CIM_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::number() const {
  if (kind_ == Kind::kInteger) return static_cast<double>(integer_);
  CIM_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

long long Json::integer() const {
  CIM_REQUIRE(kind_ == Kind::kInteger, "JSON value is not an integer");
  return integer_;
}

const std::string& Json::str() const {
  CIM_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const Json* Json::find(const std::string& key) const {
  CIM_REQUIRE(kind_ == Kind::kObject, "find() needs an object");
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) throw Error("missing JSON key: " + key);
  return *value;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ == Kind::kObject) {
    CIM_REQUIRE(index < fields_.size(), "JSON object index out of range");
    return fields_[index].second;
  }
  CIM_REQUIRE(kind_ == Kind::kArray, "at(index) needs an array or object");
  CIM_REQUIRE(index < items_.size(), "JSON array index out of range");
  return items_[index];
}

const std::string& Json::key_at(std::size_t index) const {
  CIM_REQUIRE(kind_ == Kind::kObject, "key_at() needs an object");
  CIM_REQUIRE(index < fields_.size(), "JSON object index out of range");
  return fields_[index].first;
}

namespace {

/// Strict recursive-descent JSON reader. Built on the public Json API;
/// object duplicates follow operator[] semantics (last value wins).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: {
        const char c = peek();
        // Strict JSON: numbers start with '-' or a digit (no leading '+').
        if (c != '-' && (c < '0' || c > '9')) fail("unexpected character");
        return parse_number();
      }
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      object[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out += '"';  break;
        case '\\': out += '\\'; break;
        case '/':  out += '/';  break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u':  append_utf8(out, parse_hex4()); break;
        default:   fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<unsigned>(c - 'A') + 10;
      } else {
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // BMP only — the writer never emits surrogate pairs.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool floating = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    errno = 0;
    char* end = nullptr;
    if (!floating) {
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        fail("bad integer: " + token);
      }
      return Json(value);
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger:
      out += std::to_string(integer_);
      return;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no inf/nan
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      out += buf;
      return;
    }
    case Kind::kString:
      escape_string(string_, out);
      return;
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(k, out);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::save(const std::string& path, int indent) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open JSON output file: " + path);
  const std::string text = dump(indent);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw Error("failed writing JSON output file: " + path);
}

}  // namespace cim::util
