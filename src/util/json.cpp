#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace cim::util {

Json::Json(long long value) : kind_(Kind::kInteger), integer_(value) {}

Json::Json(std::uint64_t value) : kind_(Kind::kInteger) {
  CIM_ASSERT_MSG(value <= 0x7FFFFFFFFFFFFFFFULL,
                 "unsigned value exceeds JSON integer range");
  integer_ = static_cast<long long>(value);
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::operator[](const std::string& key) {
  CIM_ASSERT_MSG(kind_ == Kind::kObject, "operator[] needs an object");
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(key, Json());
  return fields_.back().second;
}

void Json::push_back(Json value) {
  CIM_ASSERT_MSG(kind_ == Kind::kArray, "push_back needs an array");
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return fields_.size();
  if (kind_ == Kind::kArray) return items_.size();
  return 0;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger:
      out += std::to_string(integer_);
      return;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no inf/nan
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      out += buf;
      return;
    }
    case Kind::kString:
      escape_string(string_, out);
      return;
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(k, out);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::save(const std::string& path, int indent) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open JSON output file: " + path);
  const std::string text = dump(indent);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw Error("failed writing JSON output file: " + path);
}

}  // namespace cim::util
