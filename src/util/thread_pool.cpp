#include "util/thread_pool.hpp"

#include <cstdlib>
#include <utility>

namespace cim::util {

namespace {

/// Set once in worker_loop; kNotAWorker everywhere else.
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;

/// Published by shared() after the function-local static constructs, so
/// shared_if_created() can observe the pool without instantiating it.
std::atomic<const ThreadPool*> g_shared_pool{nullptr};

}  // namespace

/// One run() call: the shared function, the not-yet-finished task count
/// and the per-index captured exceptions. Lives on the submitting
/// thread's stack for the duration of the call.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> remaining{0};

  std::mutex error_mu;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors
      CIM_GUARDED_BY(error_mu);

  std::mutex done_mu;
  std::condition_variable done_cv;
  /// Set by the final task; the submitter's exit handshake waits on it.
  bool completed CIM_GUARDED_BY(done_mu) = false;
};

ThreadPool::ThreadPool(std::size_t workers) {
  queues_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
    threads_created_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

// Every pool task body executes under this loop (or under a helping
// run() caller below): both are determinism-taint roots so no submitted
// task can reach a non-deterministic source unnoticed.
CIM_DETERMINISM_ROOT
void ThreadPool::worker_loop(std::size_t id) {
  t_worker_index = id;
  for (;;) {
    Task task;
    if (pop_task(id, task)) {
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    work_cv_.wait(lock, [this] { return stop_ || ready_ > 0; });
    if (stop_) return;
  }
}

bool ThreadPool::pop_task(std::size_t home, Task& task) {
  const std::size_t n = queues_.size();
  if (n == 0) return false;
  // Own deque first, newest task first (LIFO keeps nested submissions
  // cache-warm on their submitter).
  if (home != npos) {
    WorkerQueue& own = *queues_[home];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = own.tasks.back();
      own.tasks.pop_back();
      const std::lock_guard<std::mutex> ready_lock(sleep_mu_);
      --ready_;
      return true;
    }
  }
  // Steal oldest-first from the peers, scanning from the next queue so
  // load spreads instead of everyone hammering queue 0.
  const std::size_t start = home != npos ? home + 1 : 0;
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t victim = (start + off) % n;
    if (victim == home) continue;
    WorkerQueue& q = *queues_[victim];
    const std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    task = q.tasks.front();
    q.tasks.pop_front();
    {
      const std::lock_guard<std::mutex> ready_lock(sleep_mu_);
      --ready_;
    }
    tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::execute(const Task& task) {
  Batch& batch = *task.batch;
  try {
    (*batch.fn)(task.index);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(batch.error_mu);
    batch.errors.emplace_back(task.index, std::current_exception());
  }
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: mark completion under done_mu and wake the submitter.
    // The flag (not the atomic) is what the submitter's exit handshake
    // waits on — it guarantees this thread is done touching the Batch
    // before the submitter lets it leave scope.
    const std::lock_guard<std::mutex> lock(batch.done_mu);
    batch.completed = true;
    batch.done_cv.notify_all();
  }
}

CIM_DETERMINISM_ROOT
void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline serial execution: index order, so the first throwing index
    // surfaces — the same index the parallel path rethrows.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.remaining.store(count, std::memory_order_relaxed);

  // Distribute round-robin over the worker deques. The cursor persists
  // across batches so repeated small runs don't all land on worker 0.
  const std::size_t base = next_queue_.fetch_add(count,
                                                 std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& q = *queues_[(base + i) % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(Task{&batch, i});
  }
  {
    const std::lock_guard<std::mutex> lock(sleep_mu_);
    ready_ += count;
  }
  work_cv_.notify_all();

  // Help until the batch drains. The helper may execute tasks of *other*
  // batches it steals — that is what makes nested run() calls from pool
  // workers deadlock-free: every submitter keeps draining queues while
  // its own tasks are in flight elsewhere.
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    Task task;
    if (pop_task(npos, task)) {
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.done_mu);
    batch.done_cv.wait(lock, [&batch] { return batch.completed; });
    break;  // completed implies remaining == 0
  }
  {
    // Exit handshake: the Batch lives on this stack, so before it leaves
    // scope the final decrementer must be fully out of notify_all —
    // waiting for `completed` under done_mu synchronises with it.
    std::unique_lock<std::mutex> lock(batch.done_mu);
    batch.done_cv.wait(lock, [&batch] { return batch.completed; });
  }

  if (!batch.errors.empty()) {
    // Every task has finished, so errors is complete; rethrow the lowest
    // index deterministically.
    std::size_t best = 0;
    for (std::size_t e = 1; e < batch.errors.size(); ++e) {
      if (batch.errors[e].first < batch.errors[best].first) best = e;
    }
    std::rethrow_exception(batch.errors[best].second);
  }
}

std::size_t ThreadPool::parse_width(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0) return 0;
  return static_cast<std::size_t>(value);
}

std::size_t ThreadPool::default_width() {
  if (const std::size_t env = parse_width(std::getenv("CIMANNEAL_THREADS"));
      env > 0) {
    return env;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_width());
  g_shared_pool.store(&pool, std::memory_order_release);
  return pool;
}

const ThreadPool* ThreadPool::shared_if_created() {
  return g_shared_pool.load(std::memory_order_acquire);
}

std::size_t ThreadPool::current_worker_index() { return t_worker_index; }

}  // namespace cim::util
