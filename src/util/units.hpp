// Human-readable formatting of physical quantities used throughout the PPA
// reports (bits, bytes, seconds, joules, watts, areas).
#pragma once

#include <cstdint>
#include <string>

namespace cim::util {

/// "48.6 kB", "46.4 Mb", etc. `bits=true` renders bit quantities (b)
/// instead of byte quantities (B). Uses decimal (SI) prefixes like the
/// paper does.
std::string format_bytes(double bytes, int precision = 1);
std::string format_bits(double bits, int precision = 1);

/// "44.0 us", "22.0 h", "155 d" — picks the natural scale.
std::string format_seconds(double seconds, int precision = 1);

/// "433 mW" / "1.2 W".
std::string format_watts(double watts, int precision = 1);

/// "12.3 pJ" / "5.0 uJ".
std::string format_joules(double joules, int precision = 1);

/// "43.7 mm^2" / "102 um^2" from square micrometres.
std::string format_area_um2(double um2, int precision = 1);

/// "1.0e9 x" style multiplier formatting.
std::string format_factor(double factor, int precision = 1);

}  // namespace cim::util
