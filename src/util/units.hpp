// Physical quantities for the PPA models, and their human-readable
// formatting.
//
// The macro models mix energies, times, areas and powers that are all
// `double` at the language level; a pJ accidentally handed to a ns
// parameter is silent and plausible-looking. The strong types below make
// that a compile error: each quantity is a distinct tagged type with an
// *explicit* constructor and explicit named conversions, so values only
// cross unit boundaries where someone wrote the conversion down
// (`lint.py --explain unit-raw-double` has the enforcement side).
//
// Representation choices (exact in the model's natural scale):
//   Picojoule    stores pJ  — bit-op energies are fJ-scale constants
//   Nanosecond   stores ns  — the update clock is ~1 GHz, 1 cycle ≈ 1 ns
//   SquareMicron stores µm² — cell pitches are µm-scale
//   Milliwatt    stores mW  — chip power is the paper's 433 mW anchor
// and the cross-type identity pJ / ns == mW holds without any scale
// factor, so power = energy / time is exact.
#pragma once

#include <cstdint>
#include <string>

namespace cim::util {

/// CRTP base for tagged scalar quantities. Derived types inherit the
/// explicit constructor plus same-type arithmetic, scalar scaling and
/// comparisons; the dimensionless ratio of two like quantities is a
/// plain double.
template <class Derived>
class StrongQuantity {
 public:
  constexpr StrongQuantity() = default;
  constexpr explicit StrongQuantity(double value) : value_(value) {}

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived(a.value_ + b.value_);
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived(a.value_ - b.value_);
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived(a.value_ * s);
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived(s * a.value_);
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived(a.value_ / s);
  }
  /// Ratio of like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  Derived& operator+=(Derived other) {
    value_ += other.value_;
    return static_cast<Derived&>(*this);
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;  // exact identity; callers opt in
  }
  friend constexpr bool operator!=(Derived a, Derived b) {
    return !(a == b);
  }
  friend constexpr bool operator<(Derived a, Derived b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(Derived a, Derived b) { return b < a; }
  friend constexpr bool operator<=(Derived a, Derived b) { return !(b < a); }
  friend constexpr bool operator>=(Derived a, Derived b) { return !(a < b); }

 protected:
  double value_ = 0.0;
};

/// Energy, stored in picojoules.
class Picojoule : public StrongQuantity<Picojoule> {
 public:
  using StrongQuantity::StrongQuantity;
  static constexpr Picojoule from_joules(double joules) {
    return Picojoule(joules * 1e12);
  }
  constexpr double picojoules() const { return value_; }
  constexpr double joules() const { return value_ * 1e-12; }
};

/// Time, stored in nanoseconds.
class Nanosecond : public StrongQuantity<Nanosecond> {
 public:
  using StrongQuantity::StrongQuantity;
  static constexpr Nanosecond from_seconds(double seconds) {
    return Nanosecond(seconds * 1e9);
  }
  constexpr double nanoseconds() const { return value_; }
  constexpr double seconds() const { return value_ * 1e-9; }
};

/// Area, stored in square micrometres.
class SquareMicron : public StrongQuantity<SquareMicron> {
 public:
  using StrongQuantity::StrongQuantity;
  static constexpr SquareMicron from_mm2(double mm2) {
    return SquareMicron(mm2 * 1e6);
  }
  // The strong type's own raw-double escape hatch (serialisation /
  // formatting boundary) — the one place the suffix rule must not bite.
  constexpr double um2() const { return value_; }  // NOLINT(unit-raw-double)
  constexpr double mm2() const { return value_ * 1e-6; }
};

/// Power, stored in milliwatts.
class Milliwatt : public StrongQuantity<Milliwatt> {
 public:
  using StrongQuantity::StrongQuantity;
  static constexpr Milliwatt from_watts(double watts) {
    return Milliwatt(watts * 1e3);
  }
  constexpr double milliwatts() const { return value_; }
  constexpr double watts() const { return value_ * 1e-3; }
};

/// pJ / ns = mW with no scale factor — power from energy over time is
/// exact in these representations.
constexpr Milliwatt operator/(Picojoule energy, Nanosecond time) {
  return Milliwatt(energy.picojoules() / time.nanoseconds());
}
constexpr Picojoule operator*(Milliwatt power, Nanosecond time) {
  return Picojoule(power.milliwatts() * time.nanoseconds());
}
constexpr Picojoule operator*(Nanosecond time, Milliwatt power) {
  return power * time;
}

/// Tagged array indices for the storage geometry: a window row and a
/// weight column are both 32-bit counts, and `mac(col, ...)` vs
/// `weight(row, col)` swaps are silent without the tags.
template <class Tag>
class StrongIndex {
 public:
  constexpr StrongIndex() = default;
  constexpr explicit StrongIndex(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t get() const { return value_; }
  friend constexpr bool operator==(StrongIndex a, StrongIndex b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongIndex a, StrongIndex b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongIndex a, StrongIndex b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

struct RowTag {};
struct ColTag {};
using RowIndex = StrongIndex<RowTag>;
using ColIndex = StrongIndex<ColTag>;

// ---- formatting -------------------------------------------------------
// "48.6 kB", "46.4 Mb", etc. `bits=true` renders bit quantities (b)
// instead of byte quantities (B). Uses decimal (SI) prefixes like the
// paper does.
std::string format_bytes(double bytes, int precision = 1);
std::string format_bits(double bits, int precision = 1);

/// "44.0 us", "22.0 h", "155 d" — picks the natural scale. The raw-double
/// overload serves host-side wall-clock measurements; hardware latencies
/// come through the strong type.
std::string format_seconds(double seconds, int precision = 1);
inline std::string format_seconds(Nanosecond time, int precision = 1) {
  return format_seconds(time.seconds(), precision);
}

/// "433 mW" / "1.2 W".
std::string format_watts(double watts, int precision = 1);
inline std::string format_watts(Milliwatt power, int precision = 1) {
  return format_watts(power.watts(), precision);
}

/// "12.3 pJ" / "5.0 uJ".
std::string format_joules(double joules, int precision = 1);
inline std::string format_joules(Picojoule energy, int precision = 1) {
  return format_joules(energy.joules(), precision);
}

/// "43.7 mm^2" / "102 um^2".
std::string format_area(SquareMicron area, int precision = 1);

/// "1.0e9 x" style multiplier formatting.
std::string format_factor(double factor, int precision = 1);

}  // namespace cim::util
