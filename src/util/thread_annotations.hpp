// Thread-safety and determinism annotations — one macro vocabulary, two
// consumers.
//
//  1. Clang's -Wthread-safety analysis: under __clang__ with
//     CIMANNEAL_THREAD_SAFETY_ANALYSIS defined, the CIM_* macros expand
//     to the corresponding thread-safety attributes, so the compiler
//     proves lock discipline (a guarded member touched without its mutex
//     is a warning). The opt-in define exists because libstdc++'s
//     std::mutex carries no capability attribute — enabling the
//     attributes against an unannotated standard library only produces
//     -Wthread-safety-attributes noise, so the default clang build stays
//     clean and a libc++ build (which annotates std::mutex when
//     _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS is set) opts in.
//  2. cimlint's lock-discipline pack (tools/cimlint/rules_locks.py):
//     the macro *invocations* are machine-checkable markers in the
//     source text regardless of what they expand to, so the project lint
//     enforces the same contract on the gcc-only container where clang
//     never runs: every std::mutex member must declare what it guards
//     (at least one CIM_GUARDED_BY(mutex) member in the class), and
//     CIM_GUARDED_BY/CIM_REQUIRES/CIM_EXCLUDES must name a real mutex
//     member of the enclosing class.
//
// CIM_DETERMINISM_ROOT is the determinism-taint counterpart: it expands
// to nothing under every compiler and marks a function definition as a
// hot-loop root for cimlint's cross-TU determinism-taint analysis
// (tools/cimlint/rules_determinism.py) — any call path from a marked
// root to a non-deterministic source (wall-clock read, thread-id,
// unordered-container iteration, un-seeded RNG, address-as-value
// hashing) is a build failure with the witness call chain in the
// finding. Place it at the *definition*, before the return type:
//
//   CIM_DETERMINISM_ROOT
//   LevelStats LevelSolver::run(HardwareActivity& hw, ...) { ... }
//
// Annotation placement (same positions clang expects):
//   std::size_t ready_ CIM_GUARDED_BY(sleep_mu_) = 0;   // data member
//   Sink& local_sink() CIM_EXCLUDES(mu_);               // declaration
#pragma once

#if defined(__clang__) && defined(CIMANNEAL_THREAD_SAFETY_ANALYSIS)
#define CIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CIM_THREAD_ANNOTATION_(x)
#endif

/// Data member is protected by the given mutex member: hold it to read
/// or write. Every std::mutex member must appear in at least one
/// CIM_GUARDED_BY in its class (cimlint: lock-mutex-unannotated).
#define CIM_GUARDED_BY(x) CIM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define CIM_PT_GUARDED_BY(x) CIM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed mutexes to be held by the caller.
#define CIM_REQUIRES(...) \
  CIM_THREAD_ANNOTATION_(exclusive_locks_required(__VA_ARGS__))

/// Function must be called *without* the listed mutexes held (it takes
/// them itself); guards against self-deadlock at the API boundary.
#define CIM_EXCLUDES(...) CIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions whose locking is deliberately outside the
/// analysis (e.g. lock-free fast paths double-checked under a mutex).
#define CIM_NO_THREAD_SAFETY_ANALYSIS \
  CIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Determinism-taint root marker (cimlint rules_determinism.py). Expands
/// to nothing; the token itself marks the function definition as a
/// hot-loop root whose entire call cone must stay free of
/// non-deterministic sources.
#define CIM_DETERMINISM_ROOT
