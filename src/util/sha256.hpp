// SHA-256 content hashing for persistent artifacts.
//
// The warm-start store (src/store) keys its on-disk records by content
// hash, and the same "sha256:<hex>" format is the contract shared with
// cimlint's content-hash index cache (tools/cimlint/contenthash.py) —
// one canonical fingerprint spelling across the C++ and Python sides.
// The implementation is the FIPS 180-4 compression function, streamed so
// hash_file() never materialises the whole input.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace cim::util {

/// Incremental SHA-256: update() any number of times, then digest().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Finalises and returns the 32-byte digest. The object must be
  /// reset() before further updates.
  std::array<std::uint8_t, 32> digest();

  /// digest() rendered as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot hex digest of a byte span.
std::string sha256_hex(std::span<const std::uint8_t> data);

/// One-shot hex digest of a string.
std::string sha256_hex(std::string_view text);

/// Content fingerprint of a file in the canonical "sha256:<hex>" form
/// shared with the warm-start store keys and cimlint's index cache.
/// Streams the file; throws cim::Error when the file cannot be read.
std::string hash_file(const std::string& path);

/// Prefixes a raw hex digest with the canonical "sha256:" scheme tag.
std::string sha256_tagged(const std::string& hex);

}  // namespace cim::util
