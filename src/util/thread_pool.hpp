// Persistent work-stealing thread pool — the one parallel runtime every
// threaded site in the repo runs on (colour-parallel swap kernel, replica
// ensembles, k-NN candidate-list construction, the reference pipeline's
// move scans).
//
// Why a pool: the annealer's epoch loop used to spawn and join
// std::threads per colour per epoch, so the per-swap wins of the sparse
// kernel were eaten by thread churn at the epoch level. The pool creates
// its OS threads exactly once (`threads_created()` exposes the count so
// benches can assert the epoch loop creates zero), keeps one task deque
// per worker, and lets idle workers steal from the back of their peers'
// deques.
//
// Determinism contract: the pool schedules; it never decides *what* is
// computed. `run(count, fn)` invokes fn(i) exactly once for every
// i < count, on an unspecified thread in an unspecified order — callers
// that need reproducible results must make fn(i) a pure function of i
// plus frozen shared state (per-index RNG streams, disjoint output
// slots). parallel_for.hpp layers index-fixed chunking and reduction
// order on top, which is what makes results independent of the worker
// count. See DESIGN.md §11.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace cim::util {

class ThreadPool {
 public:
  /// Creates `workers` persistent OS threads. 0 is allowed: every run()
  /// then executes inline on the caller (useful for serial baselines).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t width() const { return workers_.size(); }

  /// Invokes fn(i) for every i in [0, count) and blocks until all
  /// complete. The calling thread helps execute queued tasks while it
  /// waits, so pool workers may submit nested run() calls without
  /// deadlock. If tasks throw, the exception of the *lowest* task index
  /// is rethrown after every task finished (the same index a serial loop
  /// would have surfaced first — callers see one deterministic error
  /// regardless of scheduling).
  void run(std::size_t count, const std::function<void(std::size_t)>& fn)
      CIM_EXCLUDES(sleep_mu_);

  /// Total OS threads this pool ever created (== width(); the pool never
  /// creates threads after construction). Benches sample it around hot
  /// loops to prove the loop spawns nothing.
  std::uint64_t threads_created() const {
    return threads_created_.load(std::memory_order_relaxed);
  }
  /// Tasks executed so far (by workers and by helping callers).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// Tasks a thread popped from a deque it does not own (workers stealing
  /// from peers, plus helping callers, which own no deque).
  std::uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

  /// The process-wide pool, created on first use with default_width()
  /// workers and reused by every parallel site; serial code paths never
  /// touch it, so fully serial runs create no threads at all.
  static ThreadPool& shared();

  /// The shared pool if shared() has already constructed it, else
  /// nullptr. Observers (the telemetry snapshot) use this so exporting
  /// metrics never instantiates the pool as a side effect.
  static const ThreadPool* shared_if_created();

  /// Sentinel returned by current_worker_index() on threads no pool
  /// created (main, test drivers, helping submitters).
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// The calling thread's fixed index within the pool that created it
  /// ([0, width)), or kNotAWorker. A stable property of the thread, not
  /// of scheduling — telemetry sinks merge in this order to keep trace
  /// output deterministic (DESIGN.md §12).
  static std::size_t current_worker_index();

  /// Width of the shared pool: the CIMANNEAL_THREADS environment
  /// variable when set to a positive integer, else the hardware
  /// concurrency (min 1).
  static std::size_t default_width();

  /// Parses a CIMANNEAL_THREADS-style override; nullopt-like 0 for
  /// unset/invalid/non-positive values. Exposed for tests.
  static std::size_t parse_width(const char* text);

 private:
  struct Batch;
  struct Task {
    Batch* batch = nullptr;
    std::size_t index = 0;
  };
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks CIM_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t id);
  /// Pops one task: LIFO from `home` (own deque), else FIFO-steals from
  /// the peers. `home == npos` for helping callers (no own deque).
  /// Takes queue mutexes and sleep_mu_ internally.
  bool pop_task(std::size_t home, Task& task) CIM_EXCLUDES(sleep_mu_);
  void execute(const Task& task);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;

  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  /// Queued-but-unclaimed tasks (what sleeping workers wait on).
  std::size_t ready_ CIM_GUARDED_BY(sleep_mu_) = 0;
  bool stop_ CIM_GUARDED_BY(sleep_mu_) = false;

  std::atomic<std::uint64_t> threads_created_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::size_t> next_queue_{0};  // round-robin submission cursor
};

}  // namespace cim::util
