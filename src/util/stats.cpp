#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cim::util {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CIM_ASSERT(hi > lo);
  CIM_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  CIM_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  CIM_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  std::size_t below = underflow_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double bin_hi = lo_ + width * static_cast<double>(b + 1);
    if (x >= bin_hi) {
      below += counts_[b];
    } else {
      const double bin_lo = bin_hi - width;
      const double frac = (x - bin_lo) / width;
      return (static_cast<double>(below) +
              frac * static_cast<double>(counts_[b])) /
             static_cast<double>(total_);
    }
  }
  return 1.0;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    out += std::to_string(bin_center(b));
    out += " | ";
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double quantile(std::vector<double> samples, double q) {
  CIM_ASSERT(!samples.empty());
  CIM_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  CIM_ASSERT(xs.size() == ys.size());
  CIM_ASSERT(xs.size() >= 2);
  RunningStats sx;
  RunningStats sy;
  for (const double x : xs) sx.add(x);
  for (const double y : ys) sy.add(y);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  // Zero-variance sentinel guarding the division; exact by construction.
  return denom == 0.0 ? 0.0 : cov / denom;  // NOLINT(unit-float-eq)
}

double geometric_mean(const std::vector<double>& xs) {
  CIM_ASSERT(!xs.empty());
  double log_sum = 0.0;
  for (const double x : xs) {
    CIM_ASSERT(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace cim::util
