// Content fingerprints for TSP instances.
//
// The warm-start store (src/store) keys records by what the solver
// actually optimises — metric, size, and the exact coordinate or matrix
// payload — never by the instance name or comment, so a renamed copy of
// pla85900 hits the same record while a perturbed copy misses it. The
// companion instance_key() is the coarser "name|n|metric" bucket used to
// find a compatible prior solution for perturbed re-solves.
#pragma once

#include <string>

#include "tsp/instance.hpp"

namespace cim::tsp {

/// Canonical content hash of an instance in "sha256:<hex>" form. Hashes
/// the metric keyword, city count, and the little-endian byte images of
/// either the coordinate doubles (in city order) or the explicit matrix
/// values. Name and comment are deliberately excluded.
std::string instance_fingerprint(const Instance& instance);

/// Coarse compatibility bucket "name|n|metric" for same-instance-family
/// lookups (e.g. a perturbed re-solve of the same TSPLIB file).
std::string instance_key(const Instance& instance);

}  // namespace cim::tsp
