#include "tsp/tour.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace cim::tsp {

Tour Tour::identity(std::size_t n) {
  std::vector<CityId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  return Tour(std::move(order));
}

bool Tour::is_valid(std::size_t n) const {
  if (order_.size() != n) return false;
  std::vector<char> seen(n, 0);
  for (const CityId c : order_) {
    if (c >= n || seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

long long Tour::length(const Instance& instance) const {
  CIM_ASSERT(order_.size() == instance.size());
  if (order_.size() < 2) return 0;
  long long total = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    total += instance.distance(order_[i], successor(i));
  }
  return total;
}

std::vector<std::uint32_t> Tour::position_of() const {
  std::vector<std::uint32_t> pos(order_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) pos[order_[i]] = i;
  return pos;
}

void Tour::reverse_segment(std::size_t i, std::size_t j) {
  CIM_ASSERT(i <= j && j < order_.size());
  std::reverse(order_.begin() + static_cast<std::ptrdiff_t>(i),
               order_.begin() + static_cast<std::ptrdiff_t>(j) + 1);
}

double optimal_ratio(long long tour_length, long long reference_length) {
  CIM_ASSERT(reference_length > 0);
  return static_cast<double>(tour_length) /
         static_cast<double>(reference_length);
}

}  // namespace cim::tsp
