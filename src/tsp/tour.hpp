// Tour representation: a permutation of the instance's cities, interpreted
// as a closed cycle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"

namespace cim::tsp {

class Tour {
 public:
  Tour() = default;
  explicit Tour(std::vector<CityId> order) : order_(std::move(order)) {}

  /// Identity tour 0,1,...,n-1.
  static Tour identity(std::size_t n);

  std::size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }
  std::span<const CityId> order() const { return order_; }
  std::vector<CityId>& mutable_order() { return order_; }
  CityId at(std::size_t position) const { return order_[position]; }
  CityId operator[](std::size_t position) const { return order_[position]; }

  /// City after / before position (cyclic).
  CityId successor(std::size_t position) const {
    return order_[(position + 1) % order_.size()];
  }
  CityId predecessor(std::size_t position) const {
    return order_[(position + order_.size() - 1) % order_.size()];
  }

  /// True iff the tour visits every city of an n-city instance exactly once.
  bool is_valid(std::size_t n) const;

  /// Total cyclic length under the instance's metric.
  long long length(const Instance& instance) const;

  /// position_of()[c] is the tour position of city c. O(n).
  std::vector<std::uint32_t> position_of() const;

  /// Reverses the segment [i, j] (inclusive, non-cyclic indices).
  void reverse_segment(std::size_t i, std::size_t j);

  friend bool operator==(const Tour& a, const Tour& b) {
    return a.order_ == b.order_;
  }

 private:
  std::vector<CityId> order_;
};

/// Ratio of `tour_length` to `reference_length` (the paper's "optimal
/// ratio"); reference must be positive.
double optimal_ratio(long long tour_length, long long reference_length);

}  // namespace cim::tsp
