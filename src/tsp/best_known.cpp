#include "tsp/best_known.hpp"

#include <map>

namespace cim::tsp {

namespace {

// TSPLIB optimal tour lengths (all instances below are solved to
// optimality; source: TSPLIB documentation / Concorde results).
const std::map<std::string, long long>& best_known_table() {
  static const std::map<std::string, long long> table = {
      {"berlin52", 7542},     {"eil51", 426},       {"eil76", 538},
      {"eil101", 629},        {"kroA100", 21282},   {"kroB100", 22141},
      {"lin105", 14379},      {"ch130", 6110},      {"ch150", 6528},
      {"a280", 2579},         {"pr439", 107217},    {"pcb442", 50778},
      {"att532", 27686},      {"rat783", 8806},     {"pr1002", 259045},
      {"pcb1173", 56892},     {"rl1304", 252948},   {"nrw1379", 56638},
      {"u2152", 64253},       {"pr2392", 378032},   {"pcb3038", 137694},
      {"fl3795", 28772},      {"fnl4461", 182566},  {"rl5915", 565530},
      {"rl5934", 556045},     {"pla7397", 23260728},{"rl11849", 923288},
      {"usa13509", 19982859}, {"brd14051", 469385}, {"d15112", 1573084},
      {"d18512", 645238},     {"pla33810", 66048945},
      {"pla85900", 142382641},
  };
  return table;
}

// Concorde runtimes cited by the paper (§VI, from benchmark page [13]).
const std::map<std::string, double>& concorde_table() {
  static const std::map<std::string, double> table = {
      {"pcb3038", 22.0 * 3600.0},          // 22 hours
      {"rl5934", 7.0 * 86400.0},           // 7 days
      {"rl5915", 7.0 * 86400.0},           // same order as rl5934
      {"rl11849", 155.0 * 86400.0},        // 155 days
  };
  return table;
}

}  // namespace

std::optional<long long> best_known_length(const std::string& name) {
  const auto& table = best_known_table();
  const auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::optional<double> concorde_runtime_seconds(const std::string& name) {
  const auto& table = concorde_table();
  const auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

}  // namespace cim::tsp
