// k-nearest-neighbour candidate lists.
//
// Local-search heuristics (2-opt, Or-opt) and the clustering passes only
// ever consider geometrically close city pairs; candidate lists make them
// O(n·k) instead of O(n²). Built with the kd-tree for coordinate instances
// and by exhaustive scan for explicit-matrix instances. Construction is
// parallelised over cities on the shared util::ThreadPool (each city's
// list is a pure function of the instance, so the result is identical on
// any worker count); small instances build inline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"

namespace cim::tsp {

class NeighborLists {
 public:
  /// Builds k-nearest candidate lists for every city. O(n log n · k) for
  /// coordinate instances.
  NeighborLists(const Instance& instance, std::size_t k);

  std::size_t k() const { return k_; }
  std::size_t size() const { return lists_.size() / k_; }

  /// Neighbours of `city`, nearest first.
  std::span<const CityId> of(CityId city) const {
    return {lists_.data() + static_cast<std::size_t>(city) * k_, k_};
  }

 private:
  std::size_t k_ = 0;
  std::vector<CityId> lists_;  // flattened n*k
};

}  // namespace cim::tsp
