// k-nearest-neighbour candidate lists, built and laid out in cache tiles.
//
// Local-search heuristics (2-opt, Or-opt) and the clustering passes only
// ever consider geometrically close city pairs; candidate lists make them
// O(n·k) instead of O(n²). Built with the kd-tree for coordinate instances
// and by exhaustive scan for explicit-matrix instances.
//
// Construction walks the cities in fixed tiles of kTileCities: each tile
// gathers its query coordinates into SoA scratch (or copies its matrix
// rows contiguously) once, and every per-tile scratch buffer is allocated
// once per tile, not per city. Tiles are the parallel grain on the shared
// util::ThreadPool; tile boundaries are index-fixed (never pool width), so
// the result is bit-identical on any CIMANNEAL_THREADS. Small instances
// fall below one tile and build inline.
//
// With Options::with_distances the lists also carry each candidate's
// TSPLIB distance in a blocked array aligned with of(): consumers scanning
// candidates (2-opt/Or-opt) read d(city, cand) from contiguous memory
// instead of recomputing sqrt+round per visit. The stored values are the
// exact instance.distance() integers, so consumption is bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"

namespace cim::tsp {

class NeighborLists {
 public:
  struct Options {
    /// Also store each candidate's distance (doubles the footprint;
    /// enables dist_of()).
    bool with_distances = false;
  };

  /// Cities per build tile and per parallel chunk. Fixed so scratch reuse
  /// and chunk boundaries are identical on any worker count.
  static constexpr std::size_t kTileCities = 64;

  /// Builds k-nearest candidate lists for every city. O(n log n · k) for
  /// coordinate instances.
  NeighborLists(const Instance& instance, std::size_t k)
      : NeighborLists(instance, k, Options{}) {}
  NeighborLists(const Instance& instance, std::size_t k, Options options);

  std::size_t k() const { return k_; }
  std::size_t size() const { return lists_.size() / k_; }
  bool has_distances() const { return !dists_.empty(); }

  /// Neighbours of `city`, nearest first.
  std::span<const CityId> of(CityId city) const {
    return {lists_.data() + static_cast<std::size_t>(city) * k_, k_};
  }

  /// Distances aligned with of(city): dist_of(city)[j] ==
  /// instance.distance(city, of(city)[j]). Empty unless built
  /// with_distances.
  std::span<const long long> dist_of(CityId city) const {
    if (dists_.empty()) return {};
    return {dists_.data() + static_cast<std::size_t>(city) * k_, k_};
  }

 private:
  std::size_t k_ = 0;
  std::vector<CityId> lists_;     // flattened n*k, tile-built
  std::vector<long long> dists_;  // n*k when with_distances, else empty
};

}  // namespace cim::tsp
