#include "tsp/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/sha256.hpp"

namespace cim::tsp {

namespace {

// Canonicalised little-endian byte image, independent of host endianness
// so fingerprints written on one machine stay valid on another.
template <typename T>
void update_le(util::Sha256& hasher, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::array<std::uint8_t, sizeof(T)> bytes{};
  std::memcpy(bytes.data(), &value, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    std::reverse(bytes.begin(), bytes.end());
  }
  hasher.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

}  // namespace

std::string instance_fingerprint(const Instance& instance) {
  util::Sha256 hasher;
  hasher.update(std::string_view("cimanneal-instance-v1\n"));
  hasher.update(geo::metric_name(instance.metric()));
  hasher.update(std::string_view("\n"));
  update_le(hasher, static_cast<std::uint64_t>(instance.size()));
  if (instance.has_coords()) {
    for (const geo::Point p : instance.coords()) {
      update_le(hasher, p.x);
      update_le(hasher, p.y);
    }
  } else {
    const std::size_t n = instance.size();
    for (CityId a = 0; a < n; ++a) {
      for (CityId b = 0; b < n; ++b) {
        update_le(hasher,
                  static_cast<std::int64_t>(instance.distance(a, b)));
      }
    }
  }
  return util::sha256_tagged(hasher.hex_digest());
}

std::string instance_key(const Instance& instance) {
  return instance.name() + "|" + std::to_string(instance.size()) + "|" +
         geo::metric_name(instance.metric());
}

}  // namespace cim::tsp
