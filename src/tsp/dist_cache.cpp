#include "tsp/dist_cache.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::tsp {

DistanceCache::DistanceCache(const Instance& instance,
                             std::size_t capacity_log2)
    : instance_(&instance) {
  CIM_REQUIRE(capacity_log2 >= kShardBits && capacity_log2 < 30,
              "DistanceCache: capacity_log2 out of range");
  slots_.assign(std::size_t{1} << capacity_log2, Slot{kEmptyKey, 0});
  shard_mask_ = (slots_.size() >> kShardBits) - 1;
}

long long DistanceCache::distance(CityId a, CityId b) {
  if (a == b) return 0;
  const CityId lo = std::min(a, b);
  const CityId hi = std::max(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  std::uint64_t mix_state = key;
  const std::uint64_t hash = util::splitmix64(mix_state);
  const std::size_t shard = static_cast<std::size_t>(hash) &
                            ((std::size_t{1} << kShardBits) - 1);
  const std::size_t slot_in_shard =
      static_cast<std::size_t>(hash >> kShardBits) & shard_mask_;
  Slot& slot = slots_[shard * (shard_mask_ + 1) + slot_in_shard];
  stats_.bytes_touched += sizeof(Slot);
  if (slot.key == key) {
    ++stats_.hits;
    return slot.value;
  }
  ++stats_.misses;
  const long long d = instance_->distance(lo, hi);
  slot.key = key;
  slot.value = d;
  stats_.bytes_touched += sizeof(Slot);
  return d;
}

void DistanceCache::clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{kEmptyKey, 0});
}

}  // namespace cim::tsp
