#include "tsp/instance_stats.hpp"

#include <cmath>

#include "geo/kdtree.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace cim::tsp {

InstanceStats compute_stats(const Instance& instance) {
  CIM_REQUIRE(instance.has_coords(),
              "instance statistics need coordinates");
  InstanceStats stats;
  stats.n = instance.size();
  const auto box = geo::bounding_box(instance.coords());
  stats.extent_x = box.width();
  stats.extent_y = box.height();
  if (stats.n < 2) return stats;

  const geo::KdTree tree(instance.coords());
  util::RunningStats nn;
  std::size_t aligned = 0;
  for (std::size_t i = 0; i < stats.n; ++i) {
    const geo::Point p = instance.coord(static_cast<CityId>(i));
    const std::size_t j = tree.nearest(p, i);
    CIM_ASSERT(j != geo::KdTree::npos);
    const geo::Point q = instance.coord(static_cast<CityId>(j));
    nn.add(geo::euclidean(p, q));
    if (p.x == q.x || p.y == q.y) ++aligned;
  }
  stats.nn_mean = nn.mean();
  stats.nn_cv = nn.mean() > 0.0 ? nn.stddev() / nn.mean() : 0.0;
  stats.axis_alignment =
      static_cast<double>(aligned) / static_cast<double>(stats.n);

  // Expected NN distance of a homogeneous Poisson process with the same
  // density: 0.5 / sqrt(λ), λ = n / area.
  const double area = std::max(stats.extent_x * stats.extent_y, 1e-12);
  const double lambda = static_cast<double>(stats.n) / area;
  const double uniform_nn = 0.5 / std::sqrt(lambda);
  stats.nn_ratio = uniform_nn > 0.0 ? stats.nn_mean / uniform_nn : 0.0;
  return stats;
}

}  // namespace cim::tsp
