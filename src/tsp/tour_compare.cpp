#include "tsp/tour_compare.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "util/error.hpp"

namespace cim::tsp {

Tour canonical_form(const Tour& tour) {
  const std::size_t n = tour.size();
  CIM_REQUIRE(n >= 1, "cannot canonicalise an empty tour");
  if (n <= 2) {
    // One canonical ordering exists.
    std::vector<CityId> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<CityId>(i);
    CIM_REQUIRE(tour.is_valid(n), "tour must be a permutation");
    return Tour(std::move(order));
  }
  CIM_REQUIRE(tour.is_valid(n), "tour must be a permutation");

  const auto pos = tour.position_of();
  const std::size_t p0 = pos[0];
  const CityId next = tour.successor(p0);
  const CityId prev = tour.predecessor(p0);

  std::vector<CityId> order;
  order.reserve(n);
  if (next <= prev) {
    for (std::size_t k = 0; k < n; ++k) {
      order.push_back(tour.at((p0 + k) % n));
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      order.push_back(tour.at((p0 + n - k) % n));
    }
  }
  return Tour(std::move(order));
}

bool same_cycle(const Tour& a, const Tour& b) {
  if (a.size() != b.size()) return false;
  return canonical_form(a) == canonical_form(b);
}

std::size_t shared_edges(const Tour& a, const Tour& b) {
  CIM_REQUIRE(a.size() == b.size(), "tours must have equal size");
  const std::size_t n = a.size();
  if (n < 2) return 0;
  CIM_REQUIRE(a.is_valid(n) && b.is_valid(n),
              "tours must be permutations");

  // Adjacency of b: for each city its two neighbours.
  std::vector<std::array<CityId, 2>> nb(n);
  for (std::size_t i = 0; i < n; ++i) {
    nb[b.at(i)] = {b.predecessor(i), b.successor(i)};
  }
  std::size_t shared = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CityId u = a.at(i);
    const CityId v = a.successor(i);
    if (nb[u][0] == v || nb[u][1] == v) ++shared;
  }
  // n == 2 counts the single undirected edge twice in the cyclic walk.
  return n == 2 ? std::min<std::size_t>(shared, 1) : shared;
}

double bond_distance(const Tour& a, const Tour& b) {
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const std::size_t denom = n == 2 ? 1 : n;
  return 1.0 - static_cast<double>(shared_edges(a, b)) /
                   static_cast<double>(denom);
}

}  // namespace cim::tsp
