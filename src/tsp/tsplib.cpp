#include "tsp/tsplib.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace cim::tsp {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits "KEY : value" / "KEY: value" headers; returns false for
/// section markers and data lines.
bool split_header(const std::string& line, std::string& key,
                  std::string& value) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) return false;
  key = trim(line.substr(0, colon));
  value = trim(line.substr(colon + 1));
  // Header keys are all-caps identifiers.
  if (key.empty()) return false;
  for (const char c : key) {
    if (!std::isupper(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

struct Header {
  std::string name = "unnamed";
  std::string comment;
  std::string type = "TSP";
  std::string edge_weight_type;
  std::string edge_weight_format;
  std::size_t dimension = 0;
};

enum class MatrixLayout {
  kFullMatrix,
  kUpperRow,
  kLowerRow,
  kUpperDiagRow,
  kLowerDiagRow,
};

MatrixLayout parse_layout(const std::string& format) {
  if (format == "FULL_MATRIX") return MatrixLayout::kFullMatrix;
  if (format == "UPPER_ROW") return MatrixLayout::kUpperRow;
  if (format == "LOWER_ROW") return MatrixLayout::kLowerRow;
  if (format == "UPPER_DIAG_ROW") return MatrixLayout::kUpperDiagRow;
  if (format == "LOWER_DIAG_ROW") return MatrixLayout::kLowerDiagRow;
  throw ParseError("unsupported EDGE_WEIGHT_FORMAT: " + format);
}

std::size_t expected_entries(MatrixLayout layout, std::size_t n) {
  switch (layout) {
    case MatrixLayout::kFullMatrix:
      return n * n;
    case MatrixLayout::kUpperRow:
    case MatrixLayout::kLowerRow:
      return n * (n - 1) / 2;
    case MatrixLayout::kUpperDiagRow:
    case MatrixLayout::kLowerDiagRow:
      return n * (n + 1) / 2;
  }
  return 0;
}

std::vector<long long> assemble_matrix(MatrixLayout layout, std::size_t n,
                                       const std::vector<long long>& entries) {
  std::vector<long long> m(n * n, 0);
  std::size_t k = 0;
  const auto next = [&] { return entries[k++]; };
  switch (layout) {
    case MatrixLayout::kFullMatrix:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) m[i * n + j] = next();
      // TSPLIB full matrices are symmetric for TYPE: TSP; enforce by
      // symmetrising from the upper triangle (Instance validates).
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) m[j * n + i] = m[i * n + j];
      for (std::size_t i = 0; i < n; ++i) m[i * n + i] = 0;
      break;
    case MatrixLayout::kUpperRow:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
          m[i * n + j] = m[j * n + i] = next();
      break;
    case MatrixLayout::kLowerRow:
      for (std::size_t i = 1; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j)
          m[i * n + j] = m[j * n + i] = next();
      break;
    case MatrixLayout::kUpperDiagRow:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
          const long long v = next();
          if (i != j) m[i * n + j] = m[j * n + i] = v;
        }
      break;
    case MatrixLayout::kLowerDiagRow:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j <= i; ++j) {
          const long long v = next();
          if (i != j) m[i * n + j] = m[j * n + i] = v;
        }
      break;
  }
  return m;
}

}  // namespace

Instance parse_tsplib(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Header header;

  enum class Section { kNone, kCoords, kWeights, kDone };
  Section section = Section::kNone;

  std::vector<geo::Point> coords;
  std::vector<char> seen;
  std::vector<long long> weight_entries;

  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t == "EOF") break;

    std::string key;
    std::string value;
    if (section == Section::kNone && split_header(t, key, value)) {
      if (key == "NAME") {
        header.name = value;
      } else if (key == "COMMENT") {
        header.comment += header.comment.empty() ? value : ("\n" + value);
      } else if (key == "TYPE") {
        header.type = value;
      } else if (key == "DIMENSION") {
        long long parsed = 0;
        try {
          parsed = std::stoll(value);
        } catch (const std::exception&) {
          throw ParseError("invalid DIMENSION: " + value);
        }
        if (parsed <= 0 || parsed > 100'000'000) {
          throw ParseError("DIMENSION out of range: " + value);
        }
        header.dimension = static_cast<std::size_t>(parsed);
      } else if (key == "EDGE_WEIGHT_TYPE") {
        header.edge_weight_type = value;
      } else if (key == "EDGE_WEIGHT_FORMAT") {
        header.edge_weight_format = value;
      }
      // Other headers (DISPLAY_DATA_TYPE, ...) are ignored.
      continue;
    }

    if (t == "NODE_COORD_SECTION") {
      if (header.dimension == 0) {
        throw ParseError("NODE_COORD_SECTION before DIMENSION");
      }
      coords.assign(header.dimension, {});
      seen.assign(header.dimension, 0);
      section = Section::kCoords;
      continue;
    }
    if (t == "EDGE_WEIGHT_SECTION") {
      if (header.dimension == 0) {
        throw ParseError("EDGE_WEIGHT_SECTION before DIMENSION");
      }
      section = Section::kWeights;
      continue;
    }
    if (t == "DISPLAY_DATA_SECTION") {
      section = Section::kDone;  // skip display coordinates
      continue;
    }

    if (section == Section::kCoords) {
      std::istringstream row(t);
      long long id = 0;
      double x = 0.0;
      double y = 0.0;
      if (!(row >> id >> x >> y)) {
        throw ParseError("malformed node coordinate line: " + t);
      }
      if (id < 1 || static_cast<std::size_t>(id) > header.dimension) {
        throw ParseError("node id out of range: " + std::to_string(id));
      }
      const auto idx = static_cast<std::size_t>(id - 1);
      if (seen[idx]) {
        throw ParseError("duplicate node id: " + std::to_string(id));
      }
      seen[idx] = 1;
      coords[idx] = geo::Point{x, y};
      continue;
    }
    if (section == Section::kWeights) {
      std::istringstream row(t);
      long long v = 0;
      while (row >> v) weight_entries.push_back(v);
      continue;
    }
    // Section::kDone / kNone: ignore trailing data.
  }

  if (header.type != "TSP") {
    throw ParseError("unsupported TYPE (only symmetric TSP): " + header.type);
  }
  if (header.dimension == 0) throw ParseError("missing DIMENSION");
  if (header.edge_weight_type.empty()) {
    throw ParseError("missing EDGE_WEIGHT_TYPE");
  }

  const geo::Metric metric = geo::parse_metric(header.edge_weight_type);
  if (metric == geo::Metric::kExplicit) {
    if (weight_entries.empty()) {
      throw ParseError("EXPLICIT instance without EDGE_WEIGHT_SECTION");
    }
    const MatrixLayout layout = parse_layout(
        header.edge_weight_format.empty() ? "FULL_MATRIX"
                                          : header.edge_weight_format);
    const std::size_t expected =
        expected_entries(layout, header.dimension);
    if (weight_entries.size() != expected) {
      throw ParseError("EDGE_WEIGHT_SECTION has " +
                       std::to_string(weight_entries.size()) +
                       " entries, expected " + std::to_string(expected));
    }
    Instance inst(header.name,
                  assemble_matrix(layout, header.dimension, weight_entries),
                  header.dimension);
    inst.set_comment(header.comment);
    return inst;
  }

  if (coords.empty()) {
    throw ParseError("coordinate metric without NODE_COORD_SECTION");
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      throw ParseError("missing coordinates for node " + std::to_string(i + 1));
    }
  }
  Instance inst(header.name, metric, std::move(coords));
  inst.set_comment(header.comment);
  return inst;
}

Instance load_tsplib(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open TSPLIB file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_tsplib(buffer.str());
}

std::string write_tsplib(const Instance& instance) {
  CIM_REQUIRE(instance.has_coords(),
              "write_tsplib supports coordinate instances only");
  std::ostringstream out;
  out << "NAME : " << instance.name() << "\n";
  if (!instance.comment().empty()) {
    out << "COMMENT : " << instance.comment() << "\n";
  }
  out << "TYPE : TSP\n";
  out << "DIMENSION : " << instance.size() << "\n";
  out << "EDGE_WEIGHT_TYPE : " << geo::metric_name(instance.metric()) << "\n";
  out << "NODE_COORD_SECTION\n";
  out.precision(12);
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const geo::Point p = instance.coord(static_cast<CityId>(i));
    out << (i + 1) << " " << p.x << " " << p.y << "\n";
  }
  out << "EOF\n";
  return out.str();
}

}  // namespace cim::tsp
