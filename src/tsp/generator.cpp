#include "tsp/generator.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "tsp/tsplib.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/random.hpp"

namespace cim::tsp {

namespace {

using util::Rng;

/// Deduplicates points that collide exactly (grid generators can collide);
/// jitters duplicates by a tiny deterministic offset so the instance keeps
/// exactly n distinct cities.
void ensure_distinct(std::vector<geo::Point>& pts, Rng& rng) {
  auto key = [](geo::Point p) {
    return std::pair<double, double>(p.x, p.y);
  };
  std::vector<std::pair<std::pair<double, double>, std::size_t>> sorted;
  sorted.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    sorted.emplace_back(key(pts[i]), i);
  }
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first == sorted[i - 1].first) {
      geo::Point& p = pts[sorted[i].second];
      p.x += rng.uniform(0.125, 0.5);
      p.y += rng.uniform(0.125, 0.5);
      sorted[i].first = key(p);  // may still collide; extremely unlikely
    }
  }
}

}  // namespace

Instance generate_uniform(std::size_t n, std::uint64_t seed, double extent) {
  CIM_REQUIRE(n >= 1, "instance size must be positive");
  Rng rng(util::hash_combine(seed, 0xA11CE));
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
  }
  ensure_distinct(pts, rng);
  Instance inst("uniform" + std::to_string(n), geo::Metric::kEuc2D,
                std::move(pts));
  inst.set_comment("synthetic uniform instance, seed=" + std::to_string(seed));
  return inst;
}

Instance generate_clustered(std::size_t n, std::size_t clusters,
                            std::uint64_t seed, double extent) {
  CIM_REQUIRE(n >= 1, "instance size must be positive");
  CIM_REQUIRE(clusters >= 1, "cluster count must be positive");
  Rng rng(util::hash_combine(seed, 0xB10B5));

  // Blob centres uniform; populations log-normal (heavy tail like the
  // rl instances); radii scale with sqrt(population).
  struct Blob {
    geo::Point center;
    double weight;
    double radius;
  };
  std::vector<Blob> blobs(clusters);
  double weight_sum = 0.0;
  for (auto& b : blobs) {
    b.center = {rng.uniform(0.05, 0.95) * extent,
                rng.uniform(0.05, 0.95) * extent};
    b.weight = std::exp(rng.normal(0.0, 1.0));
    weight_sum += b.weight;
  }
  for (auto& b : blobs) {
    const double population =
        b.weight / weight_sum * static_cast<double>(n);
    b.radius = 0.02 * extent * std::sqrt(std::max(population, 1.0) /
                                         (static_cast<double>(n) /
                                          static_cast<double>(clusters)));
  }

  std::vector<geo::Point> pts;
  pts.reserve(n);
  // 90% of cities belong to blobs, 10% diffuse background.
  while (pts.size() < n) {
    if (rng.chance(0.9)) {
      // Sample a blob proportional to weight.
      double pickw = rng.uniform(0.0, weight_sum);
      std::size_t bi = 0;
      while (bi + 1 < blobs.size() && pickw > blobs[bi].weight) {
        pickw -= blobs[bi].weight;
        ++bi;
      }
      const Blob& b = blobs[bi];
      pts.push_back({b.center.x + rng.normal(0.0, b.radius),
                     b.center.y + rng.normal(0.0, b.radius)});
    } else {
      pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
    }
  }
  ensure_distinct(pts, rng);
  Instance inst("clustered" + std::to_string(n), geo::Metric::kEuc2D,
                std::move(pts));
  inst.set_comment("synthetic clustered (rl-style) instance, seed=" +
                   std::to_string(seed));
  return inst;
}

Instance generate_drill_grid(std::size_t n, std::uint64_t seed,
                             double extent) {
  CIM_REQUIRE(n >= 1, "instance size must be positive");
  Rng rng(util::hash_combine(seed, 0xD211));

  // Component blocks: rectangular regions on the board, each filled with a
  // regular grid of drill holes at one of a few standard pitches.
  const auto blocks = std::max<std::size_t>(n / 120, 1);
  std::vector<geo::Point> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    const double bw = rng.uniform(0.04, 0.18) * extent;
    const double bh = rng.uniform(0.04, 0.18) * extent;
    const geo::Point origin{rng.uniform(0.0, extent - bw),
                            rng.uniform(0.0, extent - bh)};
    static constexpr double kPitches[] = {25.0, 50.0, 100.0};
    const double pitch =
        kPitches[rng.below(std::size(kPitches))] * extent / 10000.0;
    const auto cols = std::max<std::size_t>(
        static_cast<std::size_t>(bw / pitch), 1);
    const auto rows = std::max<std::size_t>(
        static_cast<std::size_t>(bh / pitch), 1);
    // Fill a fraction of grid slots (components do not use every position).
    const double fill = rng.uniform(0.3, 0.9);
    for (std::size_t r = 0; r < rows && pts.size() < n; ++r) {
      for (std::size_t c = 0; c < cols && pts.size() < n; ++c) {
        if (!rng.chance(fill)) continue;
        pts.push_back({origin.x + static_cast<double>(c) * pitch,
                       origin.y + static_cast<double>(r) * pitch});
      }
    }
    (void)blocks;
  }
  ensure_distinct(pts, rng);
  Instance inst("drill" + std::to_string(n), geo::Metric::kEuc2D,
                std::move(pts));
  inst.set_comment("synthetic PCB drill (pcb-style) instance, seed=" +
                   std::to_string(seed));
  return inst;
}

Instance generate_pla(std::size_t n, std::uint64_t seed, double extent) {
  CIM_REQUIRE(n >= 1, "instance size must be positive");
  Rng rng(util::hash_combine(seed, 0x91A));

  // Macro blocks, each containing horizontal rows of regularly spaced pads
  // (the pla instances are VLSI logic-array artwork).
  std::vector<geo::Point> pts;
  pts.reserve(n);
  const double pad_pitch = extent / 4000.0;
  const double row_pitch = pad_pitch * 4.0;
  while (pts.size() < n) {
    const double bw = rng.uniform(0.05, 0.25) * extent;
    const auto rows = static_cast<std::size_t>(rng.range(4, 40));
    const geo::Point origin{rng.uniform(0.0, extent - bw),
                            rng.uniform(0.0, extent * 0.95)};
    const auto pads = std::max<std::size_t>(
        static_cast<std::size_t>(bw / pad_pitch), 2);
    for (std::size_t r = 0; r < rows && pts.size() < n; ++r) {
      // Rows are sparsely populated with runs of consecutive pads.
      std::size_t c = 0;
      while (c < pads && pts.size() < n) {
        const auto run = static_cast<std::size_t>(rng.range(2, 24));
        for (std::size_t k = 0; k < run && c < pads && pts.size() < n;
             ++k, ++c) {
          pts.push_back(
              {origin.x + static_cast<double>(c) * pad_pitch,
               origin.y + static_cast<double>(r) * row_pitch});
        }
        c += static_cast<std::size_t>(rng.range(1, 16));  // gap
      }
    }
  }
  ensure_distinct(pts, rng);
  Instance inst("pla" + std::to_string(n), geo::Metric::kEuc2D,
                std::move(pts));
  inst.set_comment("synthetic logic-array (pla-style) instance, seed=" +
                   std::to_string(seed));
  return inst;
}

Instance generate_geographic(std::size_t n, std::uint64_t seed,
                             double extent) {
  CIM_REQUIRE(n >= 1, "instance size must be positive");
  Rng rng(util::hash_combine(seed, 0x6E0));

  // Two-scale model: metro areas (heavy Gaussian blobs) whose centres are
  // themselves drawn near a few curved corridors, plus rural background.
  const std::size_t corridors = 5;
  struct Corridor {
    geo::Point a;
    geo::Point b;
    double bow;  // perpendicular bowing of the corridor curve
  };
  std::vector<Corridor> roads(corridors);
  for (auto& r : roads) {
    r.a = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
    r.b = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
    r.bow = rng.uniform(-0.2, 0.2) * extent;
  }
  const auto corridor_point = [&](const Corridor& r, double t) {
    const geo::Point base = r.a * (1.0 - t) + r.b * t;
    const geo::Point dir = r.b - r.a;
    const double len = std::max(geo::euclidean(r.a, r.b), 1.0);
    const geo::Point normal{-dir.y / len, dir.x / len};
    return base + normal * (r.bow * std::sin(t * 3.14159265358979));
  };

  const std::size_t metros = std::max<std::size_t>(n / 400, 8);
  std::vector<geo::Point> centers(metros);
  std::vector<double> weights(metros);
  double wsum = 0.0;
  for (std::size_t m = 0; m < metros; ++m) {
    const Corridor& r = roads[rng.below(roads.size())];
    const geo::Point c = corridor_point(r, rng.uniform());
    centers[m] = {c.x + rng.normal(0.0, 0.02 * extent),
                  c.y + rng.normal(0.0, 0.02 * extent)};
    weights[m] = std::exp(rng.normal(0.0, 1.2));
    wsum += weights[m];
  }

  std::vector<geo::Point> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    const double roll = rng.uniform();
    if (roll < 0.70) {  // metro population
      double pickw = rng.uniform(0.0, wsum);
      std::size_t m = 0;
      while (m + 1 < metros && pickw > weights[m]) {
        pickw -= weights[m];
        ++m;
      }
      const double sigma = 0.012 * extent * std::sqrt(weights[m]);
      pts.push_back({centers[m].x + rng.normal(0.0, sigma),
                     centers[m].y + rng.normal(0.0, sigma)});
    } else if (roll < 0.92) {  // towns along corridors
      const Corridor& r = roads[rng.below(roads.size())];
      const geo::Point c = corridor_point(r, rng.uniform());
      pts.push_back({c.x + rng.normal(0.0, 0.01 * extent),
                     c.y + rng.normal(0.0, 0.01 * extent)});
    } else {  // rural background
      pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
    }
  }
  ensure_distinct(pts, rng);
  Instance inst("geo" + std::to_string(n), geo::Metric::kEuc2D,
                std::move(pts));
  inst.set_comment("synthetic geographic (usa/d-style) instance, seed=" +
                   std::to_string(seed));
  return inst;
}

namespace {

struct NamedSpec {
  const char* name;
  std::size_t n;
  enum class Family { kDrill, kClustered, kPla, kGeographic } family;
};

constexpr NamedSpec kPaperInstances[] = {
    {"pcb442", 442, NamedSpec::Family::kDrill},
    {"pcb1173", 1173, NamedSpec::Family::kDrill},
    {"pcb3038", 3038, NamedSpec::Family::kDrill},
    {"rl1304", 1304, NamedSpec::Family::kClustered},
    {"rl5915", 5915, NamedSpec::Family::kClustered},
    {"rl5934", 5934, NamedSpec::Family::kClustered},
    {"rl11849", 11849, NamedSpec::Family::kClustered},
    {"usa13509", 13509, NamedSpec::Family::kGeographic},
    {"d15112", 15112, NamedSpec::Family::kGeographic},
    {"d18512", 18512, NamedSpec::Family::kGeographic},
    {"pla7397", 7397, NamedSpec::Family::kPla},
    {"pla33810", 33810, NamedSpec::Family::kPla},
    {"pla85900", 85900, NamedSpec::Family::kPla},
};

const NamedSpec* find_spec(const std::string& name) {
  for (const auto& spec : kPaperInstances) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::filesystem::path tsplib_path(const std::string& name) {
  const char* dir = std::getenv("CIMANNEAL_TSPLIB_DIR");
  if (!dir || !*dir) return {};
  return std::filesystem::path(dir) / (name + ".tsp");
}

}  // namespace

bool have_real_tsplib(const std::string& name) {
  const auto path = tsplib_path(name);
  return !path.empty() && std::filesystem::exists(path);
}

Instance make_paper_instance(const std::string& name) {
  if (have_real_tsplib(name)) {
    CIM_LOG_INFO << "loading real TSPLIB data for " << name;
    return load_tsplib(tsplib_path(name).string());
  }

  const NamedSpec* spec = find_spec(name);
  std::size_t n = 0;
  auto family = NamedSpec::Family::kClustered;
  if (spec) {
    n = spec->n;
    family = spec->family;
  } else {
    // Generic "famN" names, e.g. pcb2000, rl900, pla12000, geo5000.
    std::size_t digits = name.size();
    while (digits > 0 &&
           std::isdigit(static_cast<unsigned char>(name[digits - 1]))) {
      --digits;
    }
    const std::string prefix = name.substr(0, digits);
    const std::string number = name.substr(digits);
    if (number.empty()) {
      throw ConfigError("unknown instance name: " + name);
    }
    n = static_cast<std::size_t>(std::stoull(number));
    if (prefix == "pcb") {
      family = NamedSpec::Family::kDrill;
    } else if (prefix == "rl" || prefix == "clustered") {
      family = NamedSpec::Family::kClustered;
    } else if (prefix == "pla") {
      family = NamedSpec::Family::kPla;
    } else if (prefix == "usa" || prefix == "d" || prefix == "geo") {
      family = NamedSpec::Family::kGeographic;
    } else if (prefix == "uniform" || prefix == "u") {
      Instance inst = generate_uniform(n, name_seed(name));
      return Instance(name, inst.metric(),
                      {inst.coords().begin(), inst.coords().end()});
    } else {
      throw ConfigError("unknown instance family: " + name);
    }
  }

  const std::uint64_t seed = name_seed(name);
  Instance generated = [&] {
    switch (family) {
      case NamedSpec::Family::kDrill:
        return generate_drill_grid(n, seed);
      case NamedSpec::Family::kClustered:
        return generate_clustered(n, std::max<std::size_t>(n / 150, 4), seed);
      case NamedSpec::Family::kPla:
        return generate_pla(n, seed);
      case NamedSpec::Family::kGeographic:
        return generate_geographic(n, seed);
    }
    throw InvariantError("unreachable instance family");
  }();
  Instance inst(name, generated.metric(),
                {generated.coords().begin(), generated.coords().end()});
  inst.set_comment("synthetic mimic of TSPLIB " + name +
                   " (set CIMANNEAL_TSPLIB_DIR to use real data)");
  return inst;
}

}  // namespace cim::tsp
