#include "tsp/tour_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace cim::tsp {

std::string write_tour(const Tour& tour, const std::string& name) {
  std::ostringstream out;
  out << "NAME : " << name << "\n";
  out << "TYPE : TOUR\n";
  out << "DIMENSION : " << tour.size() << "\n";
  out << "TOUR_SECTION\n";
  for (const CityId city : tour.order()) {
    out << (city + 1) << "\n";
  }
  out << "-1\nEOF\n";
  return out.str();
}

Tour parse_tour(const std::string& text, std::size_t expected_size) {
  std::istringstream in(text);
  std::string line;
  std::size_t dimension = 0;
  bool in_section = false;
  std::vector<CityId> order;
  bool terminated = false;

  while (std::getline(in, line)) {
    // Trim.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string t = line.substr(begin, end - begin + 1);
    if (t == "EOF") break;

    if (!in_section) {
      if (t.rfind("DIMENSION", 0) == 0) {
        const auto colon = t.find(':');
        if (colon != std::string::npos) {
          try {
            dimension = static_cast<std::size_t>(
                std::stoull(t.substr(colon + 1)));
          } catch (const std::exception&) {
            throw ParseError("invalid DIMENSION in tour file");
          }
        }
      } else if (t == "TOUR_SECTION") {
        in_section = true;
      }
      continue;
    }
    if (terminated) continue;

    std::istringstream ids(t);
    long long id = 0;
    while (ids >> id) {
      if (id == -1) {
        terminated = true;
        break;
      }
      if (id < 1) throw ParseError("tour node ids must be positive");
      order.push_back(static_cast<CityId>(id - 1));
    }
  }

  if (!in_section) throw ParseError("missing TOUR_SECTION");
  if (order.empty()) throw ParseError("empty tour");
  if (dimension != 0 && order.size() != dimension) {
    throw ParseError("tour length does not match DIMENSION");
  }
  Tour tour(std::move(order));
  const std::size_t n = expected_size ? expected_size : tour.size();
  if (!tour.is_valid(n)) {
    throw ParseError("tour is not a permutation of 1.." +
                     std::to_string(n));
  }
  return tour;
}

void save_tour(const Tour& tour, const std::string& name,
               const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open tour output file: " + path);
  const std::string text = write_tour(tour, name);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw Error("failed writing tour file: " + path);
}

Tour load_tour(const std::string& path, std::size_t expected_size) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open tour file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_tour(buffer.str(), expected_size);
}

}  // namespace cim::tsp
