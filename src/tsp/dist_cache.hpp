// Sharded direct-mapped cache for repeated TSPLIB distance queries.
//
// Coordinate instances recompute d(i,j) from scratch on every call —
// sqrt + rounding under the metric — and the annealer's hot paths
// (exact_swap_delta recompute, window building, ring scoring) ask for the
// same handful of pairs many times within an epoch. This cache trades a
// few hundred KiB for those repeats. Properties the callers rely on:
//
//   * deterministic: the fill/evict order is a pure function of the query
//     sequence (direct-mapped, no clocks, no randomness), so cached and
//     uncached runs are bit-identical;
//   * NOT thread-safe: each worker owns its own instance (it lives in the
//     per-worker SwapScratch, mirroring the PR 7 scratch discipline);
//   * stats are plain counters the owner flushes to telemetry in bulk —
//     no per-query atomics on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.hpp"

namespace cim::tsp {

class DistanceCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Cache-line traffic model: bytes of cache entries read or written.
    std::uint64_t bytes_touched = 0;
  };

  /// `capacity_log2` picks the total slot count (2^capacity_log2 entries,
  /// 16 bytes each); the table is split into 16 shards so unrelated pair
  /// populations evict independently.
  explicit DistanceCache(const Instance& instance,
                         std::size_t capacity_log2 = 14);

  /// d(a,b) through the cache. Symmetric: (a,b) and (b,a) share a slot.
  long long distance(CityId a, CityId b);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Drops all cached pairs (stats are kept).
  void clear();

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key;
    long long value;
  };

  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::size_t kShardBits = 4;

  const Instance* instance_;
  std::vector<Slot> slots_;
  std::size_t shard_mask_ = 0;  // slots per shard - 1
  Stats stats_;
};

}  // namespace cim::tsp
