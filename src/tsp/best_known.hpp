// Registry of published best-known tour lengths for the TSPLIB instances
// the paper evaluates, plus the Concorde CPU runtimes the paper cites from
// [13] for its speedup claim.
#pragma once

#include <optional>
#include <string>

namespace cim::tsp {

/// Published optimal/best-known length for a TSPLIB instance name, if we
/// carry it.
std::optional<long long> best_known_length(const std::string& name);

/// Concorde wall-clock time (seconds) reported by the paper's reference
/// [13] for an instance name, if cited.
std::optional<double> concorde_runtime_seconds(const std::string& name);

}  // namespace cim::tsp
