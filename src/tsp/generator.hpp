// Synthetic TSP instance generators.
//
// The paper evaluates on TSPLIB instances (pcb3038 … pla85900). Those data
// files are not redistributable inside this repository, so we provide
// deterministic generators that mimic each family's spatial statistics:
//
//   * pcbXXXX — printed-circuit-board drill patterns: points snapped to a
//     fine grid, organised in rectangular component blocks with gaps;
//   * rlXXXX — Padberg/Rinaldi-style strongly clustered point processes
//     (Gaussian blobs of widely varying density);
//   * plaXXXX — programmed-logic-array layouts: long horizontal rows of
//     regularly spaced pads grouped into macro blocks;
//   * usaXXXXX / dXXXXX — road-network-like distributions: multi-scale
//     clusters (metro areas) plus a diffuse background along curved bands.
//
// `make_paper_instance` returns the real TSPLIB file when one is found in
// $CIMANNEAL_TSPLIB_DIR, otherwise the synthetic mimic of matching size.
#pragma once

#include <cstdint>
#include <string>

#include "tsp/instance.hpp"

namespace cim::tsp {

/// Uniform points in [0, extent)^2.
Instance generate_uniform(std::size_t n, std::uint64_t seed,
                          double extent = 10000.0);

/// Gaussian-blob clustered points ("rl" family). `clusters` blobs with
/// log-normal populations and radii.
Instance generate_clustered(std::size_t n, std::size_t clusters,
                            std::uint64_t seed, double extent = 10000.0);

/// PCB drill pattern ("pcb" family): grid-snapped points in component
/// blocks.
Instance generate_drill_grid(std::size_t n, std::uint64_t seed,
                             double extent = 10000.0);

/// Programmed-logic-array layout ("pla" family): rows of regularly spaced
/// pads inside macro blocks.
Instance generate_pla(std::size_t n, std::uint64_t seed,
                      double extent = 100000.0);

/// Road-network-like distribution ("usa"/"d" families).
Instance generate_geographic(std::size_t n, std::uint64_t seed,
                             double extent = 100000.0);

/// The paper's named instances. Accepts: pcb3038, rl5915, rl5934, rl11849,
/// usa13509, d15112, d18512, pla33810, pla85900 (and any "famN" name of a
/// known family). Loads the real TSPLIB file when available (see above),
/// otherwise generates the mimic deterministically from the name.
Instance make_paper_instance(const std::string& name);

/// True when `make_paper_instance(name)` would load real TSPLIB data.
bool have_real_tsplib(const std::string& name);

}  // namespace cim::tsp
