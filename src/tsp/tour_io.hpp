// TSPLIB .tour file format (TYPE : TOUR) — read/write, so solved tours
// interoperate with Concorde/LKH tooling.
#pragma once

#include <string>

#include "tsp/tour.hpp"

namespace cim::tsp {

/// Serialises a tour in TSPLIB TOUR format (1-based ids, -1 terminator).
std::string write_tour(const Tour& tour, const std::string& name);

/// Parses TSPLIB TOUR text; throws cim::ParseError on malformed input.
/// `expected_size` of 0 skips the dimension cross-check.
Tour parse_tour(const std::string& text, std::size_t expected_size = 0);

/// File variants.
void save_tour(const Tour& tour, const std::string& name,
               const std::string& path);
Tour load_tour(const std::string& path, std::size_t expected_size = 0);

}  // namespace cim::tsp
