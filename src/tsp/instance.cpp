#include "tsp/instance.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cim::tsp {

Instance::Instance(std::string name, geo::Metric metric,
                   std::vector<geo::Point> coords)
    : name_(std::move(name)),
      metric_(metric),
      n_(coords.size()),
      coords_(std::move(coords)) {
  CIM_REQUIRE(metric_ != geo::Metric::kExplicit,
              "coordinate instance cannot use EXPLICIT metric");
  CIM_REQUIRE(n_ >= 1, "instance must contain at least one city");
}

Instance::Instance(std::string name, std::vector<long long> matrix,
                   std::size_t n)
    : name_(std::move(name)),
      metric_(geo::Metric::kExplicit),
      n_(n),
      matrix_(std::move(matrix)) {
  CIM_REQUIRE(n_ >= 1, "instance must contain at least one city");
  CIM_REQUIRE(matrix_.size() == n_ * n_,
              "explicit matrix size must be n*n");
  for (std::size_t i = 0; i < n_; ++i) {
    CIM_REQUIRE(matrix_[i * n_ + i] == 0,
                "explicit matrix must have zero diagonal");
    for (std::size_t j = i + 1; j < n_; ++j) {
      CIM_REQUIRE(matrix_[i * n_ + j] == matrix_[j * n_ + i],
                  "explicit matrix must be symmetric");
      CIM_REQUIRE(matrix_[i * n_ + j] >= 0,
                  "explicit matrix distances must be non-negative");
    }
  }
}

long long Instance::distance_upper_bound() const {
  if (!matrix_.empty()) {
    return *std::max_element(matrix_.begin(), matrix_.end());
  }
  const geo::BoundingBox box = geo::bounding_box(coords());
  const geo::Point lo = box.lo;
  const geo::Point hi = box.hi;
  // GEO coordinates are angles; the diagonal bound does not apply. Use the
  // half-circumference of the TSPLIB Earth as a safe cap.
  if (metric_ == geo::Metric::kGeo) return 20038;
  const double diag = geo::euclidean(lo, hi);
  return static_cast<long long>(std::ceil(diag)) + 1;
}

}  // namespace cim::tsp
