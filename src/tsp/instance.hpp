// TSP instance representation.
//
// An Instance is either coordinate-based (cities are 2-D points, distances
// computed on demand under a TSPLIB metric) or explicit (a symmetric
// distance matrix). Coordinate instances scale to hundreds of thousands of
// cities because no matrix is materialised.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/metric.hpp"
#include "geo/point.hpp"

namespace cim::tsp {

using CityId = std::uint32_t;

class Instance {
 public:
  /// Coordinate-based instance.
  Instance(std::string name, geo::Metric metric,
           std::vector<geo::Point> coords);

  /// Explicit symmetric distance matrix (row-major n*n, must be symmetric
  /// with zero diagonal).
  Instance(std::string name, std::vector<long long> matrix, std::size_t n);

  const std::string& name() const { return name_; }
  std::size_t size() const { return n_; }
  geo::Metric metric() const { return metric_; }
  bool has_coords() const { return !coords_.empty(); }
  std::span<const geo::Point> coords() const { return coords_; }
  geo::Point coord(CityId city) const { return coords_[city]; }

  /// TSPLIB integer distance between two cities.
  long long distance(CityId a, CityId b) const {
    if (a == b) return 0;
    if (!matrix_.empty()) return matrix_[a * n_ + b];
    return geo::tsplib_distance(metric_, coords_[a], coords_[b]);
  }

  /// Largest pairwise distance (exact for explicit instances, bounding-box
  /// upper bound for coordinate instances); used for weight quantisation.
  long long distance_upper_bound() const;

  /// Comment attached by the parser/generator (free text).
  const std::string& comment() const { return comment_; }
  void set_comment(std::string comment) { comment_ = std::move(comment); }

 private:
  std::string name_;
  std::string comment_;
  geo::Metric metric_ = geo::Metric::kEuc2D;
  std::size_t n_ = 0;
  std::vector<geo::Point> coords_;
  std::vector<long long> matrix_;
};

}  // namespace cim::tsp
