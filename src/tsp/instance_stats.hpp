// Spatial statistics of TSP instances.
//
// Used to validate that the synthetic instance mimics reproduce the
// properties of their TSPLIB families that the clustered annealer is
// sensitive to: local density variation (how clustered the points are),
// grid alignment (drill patterns), and the nearest-neighbour distance
// profile that drives cluster sizes.
#pragma once

#include <cstddef>

#include "tsp/instance.hpp"

namespace cim::tsp {

struct InstanceStats {
  std::size_t n = 0;
  double extent_x = 0.0;
  double extent_y = 0.0;
  /// Mean and coefficient of variation of nearest-neighbour distances.
  double nn_mean = 0.0;
  double nn_cv = 0.0;
  /// Normalised mean NN distance: nn_mean / (expected NN distance of a
  /// uniform point set of the same density). < 1 ⇒ clustered, ≈ 1 ⇒
  /// uniform, > 1 ⇒ regular/grid-like.
  double nn_ratio = 0.0;
  /// Fraction of points sharing an exact x or y coordinate with their
  /// nearest neighbour (grid alignment).
  double axis_alignment = 0.0;
};

/// Computes the statistics (O(n log n)). Requires a coordinate instance.
InstanceStats compute_stats(const Instance& instance);

}  // namespace cim::tsp
