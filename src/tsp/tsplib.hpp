// TSPLIB 95 file format support (symmetric TSP subset).
//
// Supported: NODE_COORD_SECTION with EUC_2D / CEIL_2D / ATT / GEO / MAN_2D /
// MAX_2D metrics, and EDGE_WEIGHT_SECTION with FULL_MATRIX / UPPER_ROW /
// LOWER_ROW / UPPER_DIAG_ROW / LOWER_DIAG_ROW layouts.
#pragma once

#include <iosfwd>
#include <string>

#include "tsp/instance.hpp"

namespace cim::tsp {

/// Parses TSPLIB text; throws cim::ParseError on malformed input.
Instance parse_tsplib(const std::string& text);

/// Loads a .tsp file from disk; throws cim::Error if unreadable.
Instance load_tsplib(const std::string& path);

/// Serialises a coordinate instance back to TSPLIB text (round-trippable).
std::string write_tsplib(const Instance& instance);

}  // namespace cim::tsp
