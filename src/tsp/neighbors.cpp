#include "tsp/neighbors.hpp"

#include <algorithm>

#include "geo/kdtree.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace cim::tsp {

namespace {

/// Cities per parallel chunk. Fixed constants (never pool width) so the
/// chunking — and with it every scratch-buffer reuse pattern — is
/// identical on any worker count; each city's list is a pure function of
/// the instance, so the build is deterministic either way. Small
/// instances fall below one chunk and run inline without touching the
/// pool.
constexpr std::size_t kKdGrain = 128;
constexpr std::size_t kMatrixGrain = 64;

}  // namespace

NeighborLists::NeighborLists(const Instance& instance, std::size_t k)
    : k_(std::min(k, instance.size() - 1)) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n >= 2, "neighbour lists need at least two cities");
  k_ = std::max<std::size_t>(k_, 1);
  lists_.resize(n * k_);

  if (instance.has_coords()) {
    // Parallel per-city kd-tree queries: the tree is immutable and every
    // city writes its own disjoint slice of lists_.
    const geo::KdTree tree(instance.coords());
    util::parallel_for_chunks(
        n, kKdGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t c = begin; c < end; ++c) {
            const auto nn = tree.nearest_k(instance.coord(c), k_, c);
            CIM_ASSERT(nn.size() == k_);
            for (std::size_t j = 0; j < k_; ++j) {
              lists_[c * k_ + j] = static_cast<CityId>(nn[j]);
            }
          }
        });
    return;
  }

  // Explicit matrix: partial sort each row by distance. One candidate
  // scratch buffer per chunk, filled in place and reused across the
  // chunk's cities instead of reallocated per city.
  util::parallel_for_chunks(
      n, kMatrixGrain, [&](std::size_t begin, std::size_t end) {
        std::vector<CityId> others(n - 1);
        for (std::size_t c = begin; c < end; ++c) {
          const CityId city = static_cast<CityId>(c);
          for (std::size_t o = 0, w = 0; o < n; ++o) {
            if (o != c) others[w++] = static_cast<CityId>(o);
          }
          std::partial_sort(others.begin(),
                            others.begin() + static_cast<std::ptrdiff_t>(k_),
                            others.end(), [&](CityId a, CityId b) {
                              return instance.distance(city, a) <
                                     instance.distance(city, b);
                            });
          for (std::size_t j = 0; j < k_; ++j) {
            lists_[c * k_ + j] = others[j];
          }
        }
      });
}

}  // namespace cim::tsp
