#include "tsp/neighbors.hpp"

#include <algorithm>
#include <numeric>

#include "geo/kdtree.hpp"
#include "util/error.hpp"

namespace cim::tsp {

NeighborLists::NeighborLists(const Instance& instance, std::size_t k)
    : k_(std::min(k, instance.size() - 1)) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n >= 2, "neighbour lists need at least two cities");
  k_ = std::max<std::size_t>(k_, 1);
  lists_.resize(n * k_);

  if (instance.has_coords()) {
    const geo::KdTree tree(instance.coords());
    for (CityId c = 0; c < n; ++c) {
      const auto nn = tree.nearest_k(instance.coord(c), k_, c);
      CIM_ASSERT(nn.size() == k_);
      for (std::size_t j = 0; j < k_; ++j) {
        lists_[static_cast<std::size_t>(c) * k_ + j] =
            static_cast<CityId>(nn[j]);
      }
    }
    return;
  }

  // Explicit matrix: partial sort each row by distance.
  std::vector<CityId> all(n);
  std::iota(all.begin(), all.end(), 0U);
  for (CityId c = 0; c < n; ++c) {
    std::vector<CityId> others;
    others.reserve(n - 1);
    for (const CityId o : all) {
      if (o != c) others.push_back(o);
    }
    std::partial_sort(others.begin(),
                      others.begin() + static_cast<std::ptrdiff_t>(k_),
                      others.end(), [&](CityId a, CityId b) {
                        return instance.distance(c, a) <
                               instance.distance(c, b);
                      });
    for (std::size_t j = 0; j < k_; ++j) {
      lists_[static_cast<std::size_t>(c) * k_ + j] = others[j];
    }
  }
}

}  // namespace cim::tsp
