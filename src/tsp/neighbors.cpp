#include "tsp/neighbors.hpp"

#include <algorithm>

#include "geo/kdtree.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace cim::tsp {

NeighborLists::NeighborLists(const Instance& instance, std::size_t k,
                             Options options)
    : k_(std::min(k, instance.size() - 1)) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(n >= 2, "neighbour lists need at least two cities");
  k_ = std::max<std::size_t>(k_, 1);
  lists_.resize(n * k_);
  if (options.with_distances) dists_.resize(n * k_);

  if (instance.has_coords()) {
    // Parallel per-tile kd-tree queries: the tree is immutable and every
    // tile writes its own disjoint slice of lists_/dists_. The tile's
    // query coordinates are gathered into SoA scratch once so the query
    // loop reads them from two contiguous arrays.
    const geo::KdTree tree(instance.coords());
    util::parallel_for_chunks(
        n, kTileCities, [&](std::size_t begin, std::size_t end) {
          const std::size_t tile = end - begin;
          std::vector<double> xs(tile);
          std::vector<double> ys(tile);
          for (std::size_t t = 0; t < tile; ++t) {
            const geo::Point p = instance.coord(static_cast<CityId>(begin + t));
            xs[t] = p.x;
            ys[t] = p.y;
          }
          for (std::size_t t = 0; t < tile; ++t) {
            const std::size_t c = begin + t;
            const geo::Point query{xs[t], ys[t]};
            const auto nn = tree.nearest_k(query, k_, c);
            CIM_ASSERT(nn.size() == k_);
            for (std::size_t j = 0; j < k_; ++j) {
              lists_[c * k_ + j] = static_cast<CityId>(nn[j]);
            }
            if (!dists_.empty()) {
              const CityId city = static_cast<CityId>(c);
              for (std::size_t j = 0; j < k_; ++j) {
                dists_[c * k_ + j] =
                    instance.distance(city, lists_[c * k_ + j]);
              }
            }
          }
        });
    return;
  }

  // Explicit matrix: partial sort each row by distance. All per-tile
  // scratch — the candidate index buffer and the contiguous copy of the
  // matrix row — is reserved once per tile and reused across the tile's
  // cities, and the partial_sort comparator reads the local row copy
  // instead of chasing the full matrix.
  util::parallel_for_chunks(
      n, kTileCities, [&](std::size_t begin, std::size_t end) {
        std::vector<CityId> others(n - 1);
        std::vector<long long> dist_row(n);
        for (std::size_t c = begin; c < end; ++c) {
          const CityId city = static_cast<CityId>(c);
          for (std::size_t o = 0; o < n; ++o) {
            dist_row[o] = instance.distance(city, static_cast<CityId>(o));
          }
          for (std::size_t o = 0, w = 0; o < n; ++o) {
            if (o != c) others[w++] = static_cast<CityId>(o);
          }
          std::partial_sort(others.begin(),
                            others.begin() + static_cast<std::ptrdiff_t>(k_),
                            others.end(), [&](CityId a, CityId b) {
                              return dist_row[a] < dist_row[b];
                            });
          for (std::size_t j = 0; j < k_; ++j) {
            lists_[c * k_ + j] = others[j];
            if (!dists_.empty()) dists_[c * k_ + j] = dist_row[others[j]];
          }
        }
      });
}

}  // namespace cim::tsp
