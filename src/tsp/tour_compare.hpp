// Tour comparison utilities.
//
// A TSP tour is an equivalence class of permutations under rotation and
// reflection. These helpers canonicalise tours so annealer outputs can be
// deduplicated, and measure structural similarity (shared-edge fraction —
// the standard "bond distance" used to study solver diversity).
#pragma once

#include <cstddef>

#include "tsp/tour.hpp"

namespace cim::tsp {

/// Canonical representative: starts at city 0 and proceeds towards the
/// smaller of its two neighbours. Two tours are the same cycle iff their
/// canonical forms compare equal.
Tour canonical_form(const Tour& tour);

/// True iff the two tours are the same cycle (up to rotation/reflection).
bool same_cycle(const Tour& a, const Tour& b);

/// Number of undirected edges the two tours share (0..n).
std::size_t shared_edges(const Tour& a, const Tour& b);

/// Bond distance: 1 − shared/n ∈ [0, 1]; 0 for identical cycles.
double bond_distance(const Tour& a, const Tour& b);

}  // namespace cim::tsp
