// Spin-grouping (clustering) strategies for the generic Ising annealer.
//
// The clustered-window annealer updates spins group by group; each group
// becomes one weight window (a column block of the coupling matrix) in
// SRAM. The grouping is a quality/parallelism trade the TAXI line of
// work benchmarks explicitly, so it is a first-class strategy hook here:
//
//   kChromatic    greedy colouring of the interaction graph — groups are
//                 independent sets, so all members of a group update in
//                 one hardware cycle (the paper's parallel update).
//   kIndexBlocks  fixed-width index blocks — the no-information baseline.
//   kBfsBlocks    breadth-first traversal chunked into blocks — graph-
//                 locality clusters in the TAXI hierarchical spirit:
//                 coupled spins tend to share a window.
//   kDegreeMajor  spins ordered by descending degree, then chunked —
//                 hub-first update order.
//
// Only kChromatic's groups are mutually non-interacting; the annealer
// charges one update cycle per member for the other strategies
// (sequential within a window).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ising/generic.hpp"
#include "ising/model.hpp"

namespace cim::ising {

enum class GroupStrategy {
  kChromatic,
  kIndexBlocks,
  kBfsBlocks,
  kDegreeMajor,
};

/// A partition of [0, n) into ordered groups; the annealer processes
/// groups in index order and members in the listed order.
struct Partition {
  GroupStrategy strategy = GroupStrategy::kChromatic;
  /// True when groups are independent sets (chromatic): members update
  /// in one hardware cycle.
  bool parallel_safe = false;
  std::vector<std::vector<SpinIndex>> groups;

  std::size_t size() const { return groups.size(); }
  std::size_t max_group() const;
};

/// Builds the partition for `model`. `block` bounds the group width of
/// the blocked strategies (must be >= 1; ignored by kChromatic).
/// Deterministic: depends only on the model and the arguments.
Partition build_partition(const GenericModel& model, GroupStrategy strategy,
                          std::uint32_t block = 64);

const char* group_strategy_name(GroupStrategy strategy);
std::optional<GroupStrategy> parse_group_strategy(const std::string& name);
std::vector<GroupStrategy> all_group_strategies();

}  // namespace cim::ising
