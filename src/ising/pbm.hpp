// Permutational Boltzmann machine (PBM) moves.
//
// Instead of paying the b/c one-hot penalties of Eq. (3), the PBM [5] keeps
// the assignment feasible by construction: the state is a permutation and
// the elementary move swaps two visiting orders, which flips exactly four
// spins (σ_ik, σ_il, σ_jk, σ_jl). The energy change of a swap is the sum of
// two local spin energies after minus two before — precisely the four MAC
// results the CIM hardware computes (Fig. 5(a)).
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::ising {

/// Permutation state with PBM swap evaluation over a full TSP instance.
class PbmState {
 public:
  PbmState(const tsp::Instance& instance, tsp::Tour initial);

  const tsp::Tour& tour() const { return tour_; }
  std::size_t size() const { return tour_.size(); }
  long long length() const { return length_; }

  /// Local spin energy H(σ_{order,city}) under the current permutation,
  /// assuming σ = 1 at that position: sum of distances to the cities at the
  /// two adjacent orders (the MAC result).
  long long local_energy(std::size_t order, tsp::CityId city) const;

  /// ΔH of swapping the cities at orders i and j, computed with the
  /// 4-local-energy scheme of the paper (two MACs before, two after).
  long long swap_delta(std::size_t i, std::size_t j) const;

  /// Applies the swap and updates the cached length.
  void apply_swap(std::size_t i, std::size_t j);

  /// Recomputes the length from scratch (for validation).
  long long recompute_length() const { return tour_.length(instance_); }

 private:
  const tsp::Instance& instance_;
  tsp::Tour tour_;
  long long length_ = 0;
};

}  // namespace cim::ising
