#include "ising/maxcut.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace cim::ising {

MaxCutProblem::MaxCutProblem(std::string name, std::size_t n,
                             std::vector<WeightedEdge> edges)
    : name_(std::move(name)), n_(n), edges_(std::move(edges)) {
  CIM_REQUIRE(n_ >= 2, "Max-Cut needs at least two vertices");
  std::vector<std::uint32_t> degree(n_, 0);
  for (const WeightedEdge& e : edges_) {
    CIM_REQUIRE(e.a < n_ && e.b < n_, "edge endpoint out of range");
    CIM_REQUIRE(e.a != e.b, "self-loops are not allowed");
    CIM_REQUIRE(e.w != 0, "zero-weight edges must be omitted");
    total_weight_ += e.w;
    ++degree[e.a];
    ++degree[e.b];
  }
  for (const auto d : degree) max_degree_ = std::max(max_degree_, d);
}

long long MaxCutProblem::cut_value(std::span<const Spin> spins) const {
  CIM_ASSERT(spins.size() == n_);
  long long cut = 0;
  for (const WeightedEdge& e : edges_) {
    if (spins[e.a] != spins[e.b]) cut += e.w;
  }
  return cut;
}

IsingModel MaxCutProblem::to_ising() const {
  IsingModel model(n_);
  for (const WeightedEdge& e : edges_) {
    model.add_coupling(e.a, e.b, -static_cast<double>(e.w));
  }
  return model;
}

long long MaxCutProblem::cut_from_hamiltonian(double hamiltonian) const {
  // H = Σ wσσ; cut = (W_total − H)/2.
  return static_cast<long long>(
      std::llround((static_cast<double>(total_weight_) - hamiltonian) / 2.0));
}

MaxCutProblem random_maxcut(std::size_t n, double edge_probability,
                            std::uint64_t seed, std::int32_t w_max,
                            bool signed_weights) {
  CIM_REQUIRE(edge_probability > 0.0 && edge_probability <= 1.0,
              "edge probability must be in (0, 1]");
  CIM_REQUIRE(w_max >= 1, "w_max must be positive");
  util::Rng rng(util::hash_combine(seed, 0x3A8C7));
  std::vector<WeightedEdge> edges;
  for (SpinIndex a = 0; a < n; ++a) {
    for (SpinIndex b = a + 1; b < n; ++b) {
      if (!rng.chance(edge_probability)) continue;
      auto w = static_cast<std::int32_t>(rng.range(1, w_max));
      if (signed_weights && rng.chance(0.5)) w = -w;
      edges.push_back({a, b, w});
    }
  }
  // Guarantee connectivity of the vertex set in the degenerate sparse
  // case: chain any isolated vertices.
  std::vector<char> touched(n, 0);
  for (const auto& e : edges) {
    touched[e.a] = 1;
    touched[e.b] = 1;
  }
  for (SpinIndex v = 0; v < n; ++v) {
    if (!touched[v]) edges.push_back({v, (v + 1) % static_cast<SpinIndex>(n), 1});
  }
  // Built in two steps: `"g" + std::to_string(n)` trips a spurious
  // -Wrestrict in GCC 12's inlined string concatenation at -O3 (PR105329).
  std::string name = "g";
  name += std::to_string(n);
  return MaxCutProblem(std::move(name), n, std::move(edges));
}

MaxCutProblem complete_maxcut(std::size_t n, std::uint64_t seed) {
  util::Rng rng(util::hash_combine(seed, 0xC0FFEE));
  std::vector<WeightedEdge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (SpinIndex a = 0; a < n; ++a) {
    for (SpinIndex b = a + 1; b < n; ++b) {
      edges.push_back({a, b, rng.chance(0.5) ? 1 : -1});
    }
  }
  std::string name = "k";  // two-step build: GCC 12 -Wrestrict (PR105329)
  name += std::to_string(n);
  return MaxCutProblem(std::move(name), n, std::move(edges));
}

MaxCutProblem ring_maxcut(std::size_t n) {
  CIM_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  std::vector<WeightedEdge> edges;
  for (SpinIndex v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<SpinIndex>((v + 1) % n), 1});
  }
  return MaxCutProblem("ring" + std::to_string(n), n, std::move(edges));
}

long long brute_force_maxcut(const MaxCutProblem& problem) {
  const std::size_t n = problem.size();
  CIM_REQUIRE(n <= 24, "brute_force_maxcut limited to 24 vertices");
  long long best = 0;
  std::vector<Spin> spins(n, 1);
  const std::uint32_t masks = 1U << (n - 1);  // fix spin 0 by symmetry
  for (std::uint32_t mask = 0; mask < masks; ++mask) {
    for (std::size_t v = 1; v < n; ++v) {
      spins[v] = (mask >> (v - 1)) & 1U ? Spin{1} : Spin{-1};
    }
    best = std::max(best, problem.cut_value(spins));
  }
  return best;
}

long long greedy_maxcut(const MaxCutProblem& problem, std::uint64_t seed,
                        std::vector<Spin>* out_spins) {
  const std::size_t n = problem.size();
  util::Rng rng(seed);
  std::vector<Spin> spins = random_spins(n, rng);
  const IsingModel model = problem.to_ising();

  // Single-spin best-improvement local search to a local optimum.
  bool improved = true;
  while (improved) {
    improved = false;
    for (SpinIndex v = 0; v < n; ++v) {
      if (model.flip_delta(spins, v) < 0.0) {
        spins[v] = static_cast<Spin>(-spins[v]);
        improved = true;
      }
    }
  }
  const long long cut = problem.cut_value(spins);
  if (out_spins) *out_spins = std::move(spins);
  return cut;
}

}  // namespace cim::ising
