#include "ising/qubo.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cim::ising {

Qubo::Qubo(std::size_t n) : n_(n), q_(n * (n + 1) / 2, 0.0) {
  CIM_REQUIRE(n >= 1, "QUBO needs at least one variable");
}

std::size_t Qubo::index(SpinIndex i, SpinIndex j) const {
  CIM_ASSERT(i < n_ && j < n_);
  if (i > j) std::swap(i, j);
  // Row-major upper triangle: row i starts after Σ_{k<i}(n−k) entries.
  const auto row = static_cast<std::size_t>(i);
  const std::size_t row_start = row * n_ - row * (row + 1) / 2 + row;
  return row_start + (j - i);
}

void Qubo::add(SpinIndex i, SpinIndex j, double q) { q_[index(i, j)] += q; }

double Qubo::coefficient(SpinIndex i, SpinIndex j) const {
  return q_[index(i, j)];
}

double Qubo::value(const std::vector<std::uint8_t>& x) const {
  CIM_ASSERT(x.size() == n_);
  double acc = 0.0;
  for (SpinIndex i = 0; i < n_; ++i) {
    if (!x[i]) continue;
    for (SpinIndex j = i; j < n_; ++j) {
      if (x[j]) acc += coefficient(i, j);
    }
  }
  return acc;
}

std::vector<std::uint8_t> IsingImage::binary_from_spins(
    const std::vector<Spin>& spins) {
  std::vector<std::uint8_t> x(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    x[i] = spins[i] > 0 ? 1 : 0;
  }
  return x;
}

std::vector<Spin> IsingImage::spins_from_binary(
    const std::vector<std::uint8_t>& x) {
  std::vector<Spin> spins(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    spins[i] = x[i] ? Spin{1} : Spin{-1};
  }
  return spins;
}

IsingImage to_ising(const Qubo& qubo) {
  const std::size_t n = qubo.size();
  IsingImage image{IsingModel(n), 0.0};

  // x_i = (1+σ_i)/2:
  //   q_ii x_i        → q_ii/2 + (q_ii/2) σ_i
  //   q_ij x_i x_j    → q_ij/4 (1 + σ_i + σ_j + σ_i σ_j)
  // Collect H(σ) = Σ a_i σ_i + Σ_{i<j} (q_ij/4) σ_i σ_j + offset with
  // IsingModel's sign convention H = −ΣJσσ − Σhσ, i.e. J = −q/4,
  // h_i = −a_i.
  std::vector<double> linear(n, 0.0);
  for (SpinIndex i = 0; i < n; ++i) {
    const double qii = qubo.coefficient(i, i);
    image.offset += qii / 2.0;
    linear[i] += qii / 2.0;
    for (SpinIndex j = i + 1; j < n; ++j) {
      const double qij = qubo.coefficient(i, j);
      // Structural-zero skip: untouched coefficients are exactly 0.0.
      if (qij == 0.0) continue;  // NOLINT(unit-float-eq)
      image.offset += qij / 4.0;
      linear[i] += qij / 4.0;
      linear[j] += qij / 4.0;
      image.model.add_coupling(i, j, -qij / 4.0);
    }
  }
  for (SpinIndex i = 0; i < n; ++i) {
    // Structural-zero skip, same as above: avoids storing empty fields.
    if (linear[i] != 0.0) image.model.add_field(i, -linear[i]);  // NOLINT(unit-float-eq)
  }
  return image;
}

}  // namespace cim::ising
