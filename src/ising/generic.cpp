#include "ising/generic.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.hpp"
#include "util/sha256.hpp"

namespace cim::ising {

GenericModel::GenericModel(std::string name, std::size_t n)
    : name_(std::move(name)), fields_(n, 0.0) {
  CIM_REQUIRE(n >= 1, "generic Ising model needs at least one spin");
  CIM_REQUIRE(n <= std::numeric_limits<SpinIndex>::max(),
              "generic Ising model exceeds the spin-index range");
}

void GenericModel::add_coupling(SpinIndex a, SpinIndex b, double j) {
  CIM_REQUIRE(a < size() && b < size(), "coupling index out of range");
  CIM_REQUIRE(a != b, "self-couplings are not allowed (use add_field)");
  CIM_REQUIRE(std::isfinite(j), "coupling must be finite");
  if (a > b) std::swap(a, b);
  couplings_.push_back({a, b, j});
  coalesced_ = false;
}

void GenericModel::add_field(SpinIndex i, double h) {
  CIM_REQUIRE(i < size(), "field index out of range");
  CIM_REQUIRE(std::isfinite(h), "field must be finite");
  fields_[i] += h;
}

bool GenericModel::has_fields() const {
  for (const double h : fields_) {
    if (h != 0.0) return true;  // NOLINT(unit-float-eq) structural zero
  }
  return false;
}

void GenericModel::coalesce() const {
  if (coalesced_) return;
  std::sort(couplings_.begin(), couplings_.end(),
            [](const Coupling& x, const Coupling& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  std::vector<Coupling> merged;
  merged.reserve(couplings_.size());
  for (const Coupling& c : couplings_) {
    if (!merged.empty() && merged.back().a == c.a && merged.back().b == c.b) {
      merged.back().j += c.j;
    } else {
      merged.push_back(c);
    }
  }
  std::erase_if(merged, [](const Coupling& c) {
    return c.j == 0.0;  // NOLINT(unit-float-eq) exact cancellation only
  });
  couplings_ = std::move(merged);
  coalesced_ = true;
}

std::span<const GenericModel::Coupling> GenericModel::couplings() const {
  coalesce();
  return couplings_;
}

std::uint32_t GenericModel::max_degree() const {
  std::vector<std::uint32_t> degree(size(), 0);
  for (const Coupling& c : couplings()) {
    ++degree[c.a];
    ++degree[c.b];
  }
  std::uint32_t best = 0;
  for (const auto d : degree) best = std::max(best, d);
  return best;
}

double GenericModel::energy(std::span<const Spin> spins) const {
  CIM_ASSERT(spins.size() == size());
  double acc = offset_;
  for (const Coupling& c : couplings()) {
    acc -= c.j * static_cast<double>(spins[c.a]) *
           static_cast<double>(spins[c.b]);
  }
  for (SpinIndex i = 0; i < size(); ++i) {
    acc -= fields_[i] * static_cast<double>(spins[i]);
  }
  return acc;
}

IsingModel GenericModel::to_ising() const {
  IsingModel model(size());
  for (const Coupling& c : couplings()) {
    model.add_coupling(c.a, c.b, c.j);
  }
  for (SpinIndex i = 0; i < size(); ++i) {
    if (fields_[i] != 0.0) model.add_field(i, fields_[i]);  // NOLINT(unit-float-eq)
  }
  return model;
}

std::string GenericModel::fingerprint() const {
  util::Sha256 hash;
  const auto feed_u32 = [&hash](std::uint32_t v) {
    std::uint8_t bytes[4];
    for (int k = 0; k < 4; ++k) bytes[k] = static_cast<std::uint8_t>(v >> (8 * k));
    hash.update(std::span<const std::uint8_t>(bytes, 4));
  };
  const auto feed_f64 = [&hash](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    std::uint8_t bytes[8];
    for (int k = 0; k < 8; ++k) bytes[k] = static_cast<std::uint8_t>(bits >> (8 * k));
    hash.update(std::span<const std::uint8_t>(bytes, 8));
  };
  hash.update(std::string_view("cim-generic-ising-v1"));
  feed_u32(static_cast<std::uint32_t>(size()));
  const auto terms = couplings();
  feed_u32(static_cast<std::uint32_t>(terms.size()));
  for (const Coupling& c : terms) {
    feed_u32(c.a);
    feed_u32(c.b);
    feed_f64(c.j);
  }
  for (const double h : fields_) feed_f64(h);
  feed_f64(offset_);
  return util::sha256_tagged(hash.hex_digest());
}

GenericModel GenericModel::from_qubo(std::string name, const Qubo& qubo) {
  const IsingImage image = ::cim::ising::to_ising(qubo);
  GenericModel model(std::move(name), qubo.size());
  model.add_offset(image.offset);
  for (SpinIndex i = 0; i < qubo.size(); ++i) {
    for (const IsingModel::Neighbor& nb : image.model.neighbors(i)) {
      if (nb.index > i) model.add_coupling(i, nb.index, nb.j);
    }
    const double h = image.model.field(i);
    if (h != 0.0) model.add_field(i, h);  // NOLINT(unit-float-eq)
  }
  return model;
}

GenericModel GenericModel::from_maxcut(const MaxCutProblem& maxcut) {
  GenericModel model(maxcut.name(), maxcut.size());
  for (const WeightedEdge& e : maxcut.edges()) {
    model.add_coupling(e.a, e.b, -static_cast<double>(e.w));
  }
  return model;
}

long long HardwareMapping::energy_hw(std::span<const Spin> spins) const {
  CIM_ASSERT(spins.size() == fields.size());
  long long acc = 0;
  for (const Term& t : couplings) {
    acc -= static_cast<long long>(t.w) * spins[t.a] * spins[t.b];
  }
  for (SpinIndex i = 0; i < fields.size(); ++i) {
    acc -= static_cast<long long>(fields[i]) * spins[i];
  }
  return acc;
}

namespace {

/// value·multiplier rounded to integer, or ConfigError when it is not
/// integral (within 1e-6 of an integer) or exceeds the int32 plane range.
std::int32_t scaled_int(double value, std::int64_t multiplier,
                        const char* what) {
  const double scaled = value * static_cast<double>(multiplier);
  const double rounded = std::round(scaled);
  CIM_REQUIRE(std::abs(scaled - rounded) <= 1e-6,
              std::string("hardware mapping: ") + what +
                  " is not an integral multiple of 1/4 — pre-scale the "
                  "model to quarter-integral coefficients");
  CIM_REQUIRE(std::abs(rounded) <=
                  static_cast<double>(std::numeric_limits<std::int32_t>::max()),
              std::string("hardware mapping: ") + what +
                  " overflows the int32 coefficient plane");
  return static_cast<std::int32_t>(rounded);
}

bool integral_under(double value, std::int64_t multiplier) {
  const double scaled = value * static_cast<double>(multiplier);
  return std::abs(scaled - std::round(scaled)) <= 1e-6;
}

}  // namespace

HardwareMapping map_to_hardware(const GenericModel& model) {
  std::int64_t multiplier = 4;
  for (const std::int64_t m : {std::int64_t{1}, std::int64_t{2}}) {
    bool ok = true;
    for (const GenericModel::Coupling& c : model.couplings()) {
      if (!integral_under(c.j, m)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const double h : model.fields()) {
        if (!integral_under(h, m)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      multiplier = m;
      break;
    }
  }

  HardwareMapping mapping;
  mapping.multiplier = multiplier;
  mapping.fields.assign(model.size(), 0);
  mapping.couplings.reserve(model.coupling_count());
  for (const GenericModel::Coupling& c : model.couplings()) {
    const std::int32_t w = scaled_int(c.j, multiplier, "coupling");
    if (w == 0) continue;  // rounded-away noise term
    mapping.couplings.push_back({c.a, c.b, w});
    mapping.max_abs = std::max(mapping.max_abs, std::abs(w));
  }
  for (SpinIndex i = 0; i < model.size(); ++i) {
    const std::int32_t h = scaled_int(model.field(i), multiplier, "field");
    mapping.fields[i] = h;
    if (h != 0) {
      mapping.has_fields = true;
      mapping.max_abs = std::max(mapping.max_abs, std::abs(h));
    }
  }
  return mapping;
}

}  // namespace cim::ising
