// Max-Cut problems on the Ising machinery.
//
// Every competitor in the paper's Table III (STATICA, CIM-Spin, Amorphica,
// …) is a Max-Cut annealer; this module lets the same noisy digital-CIM
// substrate solve their problem class, making the cross-design comparison
// executable rather than a constants table.
//
// Max-Cut: partition V into S/S̄ maximising Σ w_ab over edges cut.
// Ising form: cut(σ) = (W_total − Σ w_ab σ_a σ_b) / 2, so maximising the
// cut minimises H = Σ w_ab σ_a σ_b, i.e. antiferromagnetic couplings
// J_ab = −w_ab under H = −Σ J σσ.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ising/model.hpp"
#include "util/random.hpp"

namespace cim::ising {

struct WeightedEdge {
  SpinIndex a = 0;
  SpinIndex b = 0;
  std::int32_t w = 1;
};

class MaxCutProblem {
 public:
  MaxCutProblem(std::string name, std::size_t n,
                std::vector<WeightedEdge> edges);

  const std::string& name() const { return name_; }
  std::size_t size() const { return n_; }
  std::span<const WeightedEdge> edges() const { return edges_; }
  std::size_t edge_count() const { return edges_.size(); }
  long long total_weight() const { return total_weight_; }
  std::uint32_t max_degree() const { return max_degree_; }

  /// Cut value of an assignment (spins ±1).
  long long cut_value(std::span<const Spin> spins) const;

  /// The equivalent Ising model (J_ab = −w_ab).
  IsingModel to_ising() const;

  /// cut = (W_total − Σ wσσ)/2 ⇒ recover the cut from the Ising
  /// Hamiltonian of to_ising() (which is H = −Σ Jσσ = Σ wσσ).
  long long cut_from_hamiltonian(double hamiltonian) const;

 private:
  std::string name_;
  std::size_t n_ = 0;
  std::vector<WeightedEdge> edges_;
  long long total_weight_ = 0;
  std::uint32_t max_degree_ = 0;
};

/// Erdős–Rényi G(n, p) with uniform integer weights in [1, w_max]
/// (optionally signed, as in the G-set family).
MaxCutProblem random_maxcut(std::size_t n, double edge_probability,
                            std::uint64_t seed, std::int32_t w_max = 1,
                            bool signed_weights = false);

/// Complete graph K_n with ±1 weights — the STATICA-style all-to-all
/// benchmark shape.
MaxCutProblem complete_maxcut(std::size_t n, std::uint64_t seed);

/// Möbius-ladder / ring-with-chords graph whose optimum is known for
/// validation (cycle of n with unit weights: optimal cut = n for even n,
/// n−1 for odd n).
MaxCutProblem ring_maxcut(std::size_t n);

/// Exact optimum by enumeration; n ≤ 24.
long long brute_force_maxcut(const MaxCutProblem& problem);

/// Classical baseline: randomised greedy + single-spin local search.
long long greedy_maxcut(const MaxCutProblem& problem, std::uint64_t seed,
                        std::vector<Spin>* out_spins = nullptr);

}  // namespace cim::ising
