// General QUBO/Ising front-end model (ROADMAP item 3).
//
// GenericModel is the loader-facing Ising container every new problem
// family maps onto: sparse symmetric couplings J_ij, external fields h_i
// and a constant offset, under the paper's sign convention
//
//   E(σ) = offset − Σ_{i<j} J_ij σ_i σ_j − Σ_i h_i σ_i,   σ ∈ {±1}.
//
// Unlike IsingModel (the in-memory physics engine) it keeps a canonical,
// coalesced coefficient list — so instances round-trip through the sparse
// J/h text format (src/qubo/io.hpp) byte-identically, content-fingerprint
// stably (warm-start store keys), and convert exactly to the integer
// coefficient plane images the noisy-SRAM window annealer stores
// (map_to_hardware below).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ising/maxcut.hpp"
#include "ising/model.hpp"
#include "ising/qubo.hpp"

namespace cim::ising {

class GenericModel {
 public:
  struct Coupling {
    SpinIndex a = 0;  ///< canonical: a < b
    SpinIndex b = 0;
    double j = 0.0;
  };

  GenericModel(std::string name, std::size_t n);

  const std::string& name() const { return name_; }
  std::size_t size() const { return fields_.size(); }

  /// Adds J to the coupling between a and b (symmetric; a != b, both in
  /// range — ConfigError otherwise). Repeated pairs accumulate; terms
  /// that cancel to exactly zero are dropped from couplings().
  void add_coupling(SpinIndex a, SpinIndex b, double j);
  void add_field(SpinIndex i, double h);
  void add_offset(double c) { offset_ += c; }

  double offset() const { return offset_; }
  double field(SpinIndex i) const { return fields_[i]; }
  std::span<const double> fields() const { return fields_; }
  /// True when any h_i is non-zero (the annealer then provisions the
  /// always-on bias row).
  bool has_fields() const;

  /// Coalesced couplings in canonical (a < b) lexicographic order.
  std::span<const Coupling> couplings() const;
  std::size_t coupling_count() const { return couplings().size(); }
  std::uint32_t max_degree() const;

  /// E(σ) as defined in the file comment.
  double energy(std::span<const Spin> spins) const;

  /// The physics-engine view (couplings + fields, offset dropped) — used
  /// for chromatic partitions and Metropolis baselines.
  IsingModel to_ising() const;

  /// Canonical content hash in "sha256:<hex>" form over (n, coalesced
  /// couplings, fields, offset). Name is deliberately excluded, matching
  /// tsp::instance_fingerprint — a renamed copy hits the same warm-start
  /// record.
  std::string fingerprint() const;

  /// Exact QUBO image via the x = (1+σ)/2 substitution (ising/qubo.hpp):
  /// qubo.value(x(σ)) == model.energy(σ) for every assignment.
  static GenericModel from_qubo(std::string name, const Qubo& qubo);

  /// Max-Cut image: minimising E recovers the maximum cut,
  /// cut = (W_total − (E − offset_terms))/2 with J_ab = −w_ab and zero
  /// fields; maxcut.cut_value(argmin spins) is the decoded cut.
  static GenericModel from_maxcut(const MaxCutProblem& maxcut);

 private:
  void coalesce() const;

  std::string name_;
  std::vector<double> fields_;
  double offset_ = 0.0;

  mutable std::vector<Coupling> couplings_;  // canonicalised lazily
  mutable bool coalesced_ = true;
};

/// Integer coefficient image of a GenericModel for the SRAM weight
/// planes. Coefficients are multiplied by the smallest m ∈ {1, 2, 4}
/// making every J and h integral (m = 4 always suffices for models built
/// from integer QUBOs; m = 1 for integer-weight graph files) and checked
/// against the int32 plane range — a model that is not quarter-integral
/// or overflows raises ConfigError instead of silently mis-loading.
struct HardwareMapping {
  struct Term {
    SpinIndex a = 0;
    SpinIndex b = 0;
    std::int32_t w = 0;
  };

  std::vector<Term> couplings;
  std::vector<std::int32_t> fields;
  std::int64_t multiplier = 1;  ///< hardware units per model unit
  std::int32_t max_abs = 0;     ///< largest |coefficient| in hw units
  bool has_fields = false;

  std::size_t size() const { return fields.size(); }

  /// True when the coefficients fit the storage word verbatim — the
  /// annealer then represents the model exactly (no quantisation loss).
  bool exact_in_bits(std::uint32_t weight_bits) const {
    return max_abs <= static_cast<std::int32_t>((1U << weight_bits) - 1U);
  }

  /// Hardware-unit energy −ΣWσσ − ΣFσ (integer; exact).
  long long energy_hw(std::span<const Spin> spins) const;

  /// Maps a hardware-unit energy back to model units:
  /// model_offset + hw / multiplier.
  double to_model_energy(long long hw, double model_offset) const {
    return model_offset +
           static_cast<double>(hw) / static_cast<double>(multiplier);
  }
};

/// See HardwareMapping. Throws ConfigError when the model cannot be
/// represented (non-quarter-integral coefficients, int32 overflow).
HardwareMapping map_to_hardware(const GenericModel& model);

}  // namespace cim::ising
