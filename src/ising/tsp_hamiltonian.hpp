// The TSP Hamiltonian of Eq. (3):
//
//   H = a Σ_{k≠l} Σ_i W_kl σ_ik σ_(i+1)l
//     + b Σ_i (Σ_k σ_ik − 1)²
//     + c Σ_k (Σ_i σ_ik − 1)²
//
// with σ_ik ∈ {0, 1} indicating "city k is visited at order i". This module
// materialises the full N²-spin formulation for small instances — it is the
// specification against which the compact clustered/windowed machinery is
// verified, and it demonstrates the O(N⁴) interaction blow-up that motivates
// the paper (Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::ising {

/// Binary spin assignment σ_ik, indexed spin_index = i * N + k.
class TspHamiltonian {
 public:
  struct Penalties {
    double a = 1.0;  ///< objective weight
    double b = 0.0;  ///< order one-hot penalty (0 → auto: 2·max W)
    double c = 0.0;  ///< city one-hot penalty (0 → auto: 2·max W)
  };

  explicit TspHamiltonian(const tsp::Instance& instance)
      : TspHamiltonian(instance, Penalties{}) {}
  TspHamiltonian(const tsp::Instance& instance, Penalties penalties);

  std::size_t cities() const { return n_; }
  std::size_t spins() const { return n_ * n_; }

  static std::size_t spin_index(std::size_t order, std::size_t city,
                                std::size_t n) {
    return order * n + city;
  }

  /// Full H over a binary assignment (size N²).
  double energy(std::span<const std::uint8_t> sigma) const;

  /// The objective term only (a=1): equals the tour length when sigma is a
  /// valid permutation assignment.
  double objective(std::span<const std::uint8_t> sigma) const;

  /// Constraint violation penalty (b+c terms, unweighted counts).
  double penalty(std::span<const std::uint8_t> sigma) const;

  /// Local spin energy H(σ_ik) of the objective coupling only — the MAC
  /// value the CIM hardware computes: σ_ik · Σ_l W_kl (σ_(i−1)l + σ_(i+1)l).
  double local_energy(std::span<const std::uint8_t> sigma, std::size_t order,
                      std::size_t city) const;

  /// Converts a tour into its one-hot assignment.
  std::vector<std::uint8_t> assignment_from_tour(const tsp::Tour& tour) const;

  /// Recovers a tour from a feasible assignment; throws if infeasible.
  tsp::Tour tour_from_assignment(std::span<const std::uint8_t> sigma) const;

  /// True iff both one-hot constraint families hold.
  bool feasible(std::span<const std::uint8_t> sigma) const;

  const Penalties& penalties() const { return penalties_; }

 private:
  const tsp::Instance& instance_;
  std::size_t n_ = 0;
  Penalties penalties_;
};

}  // namespace cim::ising
