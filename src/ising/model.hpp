// Generic Ising model with sparse couplings (Eq. (1)/(2) of the paper).
//
// Spins take values +1/-1. The model stores couplings J_ij as a symmetric
// sparse adjacency structure and external fields h_i. It provides the
// global Hamiltonian, per-spin local energies, single-spin Glauber updates,
// and a greedy-colouring partition of the interaction graph used to justify
// chromatic (parallel) updates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.hpp"

namespace cim::ising {

using Spin = std::int8_t;  // +1 or -1
using SpinIndex = std::uint32_t;

class IsingModel {
 public:
  explicit IsingModel(std::size_t n_spins);

  std::size_t size() const { return fields_.size(); }

  /// Adds J to the coupling between a and b (symmetric; a != b).
  void add_coupling(SpinIndex a, SpinIndex b, double j);
  void add_field(SpinIndex i, double h);

  double field(SpinIndex i) const { return fields_[i]; }

  /// Neighbours of spin i as (index, J) pairs.
  struct Neighbor {
    SpinIndex index = 0;
    double j = 0.0;
  };
  std::span<const Neighbor> neighbors(SpinIndex i) const;

  /// H = -Σ_{i<j} J_ij σ_i σ_j - Σ_i h_i σ_i  (each pair counted once).
  double hamiltonian(std::span<const Spin> spins) const;

  /// H(σ_i) = -(Σ_j J_ij σ_j + h_i) σ_i   (Eq. (2)).
  double local_energy(std::span<const Spin> spins, SpinIndex i) const;

  /// Energy change if spin i were flipped.
  double flip_delta(std::span<const Spin> spins, SpinIndex i) const;

  /// One Glauber/Metropolis sweep at temperature T; returns accepted flips.
  std::size_t metropolis_sweep(std::vector<Spin>& spins, double temperature,
                               util::Rng& rng) const;

  /// Greedy graph colouring of the interaction graph; spins with the same
  /// colour are mutually non-interacting and may be updated in parallel
  /// (chromatic Gibbs sampling). Returns colour per spin.
  std::vector<std::uint32_t> chromatic_partition() const;

 private:
  // CSR-style adjacency rebuilt lazily from an edge list.
  void ensure_csr() const;

  struct Edge {
    SpinIndex a = 0;
    SpinIndex b = 0;
    double j = 0.0;
  };
  std::vector<Edge> edges_;
  std::vector<double> fields_;

  mutable bool csr_valid_ = false;
  mutable std::vector<std::uint32_t> row_offsets_;
  mutable std::vector<Neighbor> adjacency_;
};

/// Random ±1 spin vector.
std::vector<Spin> random_spins(std::size_t n, util::Rng& rng);

}  // namespace cim::ising
