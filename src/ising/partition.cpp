#include "ising/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace cim::ising {

std::size_t Partition::max_group() const {
  std::size_t widest = 0;
  for (const auto& g : groups) widest = std::max(widest, g.size());
  return widest;
}

namespace {

/// Index-sorted adjacency lists of the coupling graph.
std::vector<std::vector<SpinIndex>> adjacency(const GenericModel& model) {
  std::vector<std::vector<SpinIndex>> adj(model.size());
  for (const GenericModel::Coupling& c : model.couplings()) {
    adj[c.a].push_back(c.b);
    adj[c.b].push_back(c.a);
  }
  for (auto& row : adj) std::sort(row.begin(), row.end());
  return adj;
}

Partition chromatic(const GenericModel& model) {
  const auto adj = adjacency(model);
  const std::size_t n = model.size();
  std::vector<std::uint32_t> color(n, 0);
  std::uint32_t color_count = 0;
  std::vector<char> used;
  for (SpinIndex v = 0; v < n; ++v) {
    used.assign(color_count + 1, 0);
    for (const SpinIndex u : adj[v]) {
      if (u < v) used[color[u]] = 1;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    color[v] = c;
    color_count = std::max(color_count, c + 1);
  }
  Partition partition;
  partition.strategy = GroupStrategy::kChromatic;
  partition.parallel_safe = true;
  partition.groups.resize(color_count);
  for (SpinIndex v = 0; v < n; ++v) partition.groups[color[v]].push_back(v);
  return partition;
}

/// Chunks `order` into groups of at most `block` members.
Partition chunked(std::vector<SpinIndex> order, std::uint32_t block,
                  GroupStrategy strategy) {
  Partition partition;
  partition.strategy = strategy;
  partition.parallel_safe = false;
  for (std::size_t start = 0; start < order.size(); start += block) {
    const std::size_t stop = std::min(order.size(), start + block);
    partition.groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                                  order.begin() + static_cast<std::ptrdiff_t>(stop));
  }
  return partition;
}

Partition bfs_blocks(const GenericModel& model, std::uint32_t block) {
  const auto adj = adjacency(model);
  const std::size_t n = model.size();
  std::vector<SpinIndex> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  std::vector<SpinIndex> queue;
  for (SpinIndex root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SpinIndex v = queue[head];
      order.push_back(v);
      for (const SpinIndex u : adj[v]) {
        if (!seen[u]) {
          seen[u] = 1;
          queue.push_back(u);
        }
      }
    }
  }
  return chunked(std::move(order), block, GroupStrategy::kBfsBlocks);
}

Partition degree_major(const GenericModel& model, std::uint32_t block) {
  const auto adj = adjacency(model);
  std::vector<SpinIndex> order(model.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&adj](SpinIndex x, SpinIndex y) {
                     return adj[x].size() > adj[y].size();
                   });
  return chunked(std::move(order), block, GroupStrategy::kDegreeMajor);
}

}  // namespace

Partition build_partition(const GenericModel& model, GroupStrategy strategy,
                          std::uint32_t block) {
  CIM_REQUIRE(block >= 1, "partition block width must be at least 1");
  switch (strategy) {
    case GroupStrategy::kChromatic:
      return chromatic(model);
    case GroupStrategy::kIndexBlocks: {
      std::vector<SpinIndex> order(model.size());
      std::iota(order.begin(), order.end(), 0U);
      return chunked(std::move(order), block, GroupStrategy::kIndexBlocks);
    }
    case GroupStrategy::kBfsBlocks:
      return bfs_blocks(model, block);
    case GroupStrategy::kDegreeMajor:
      return degree_major(model, block);
  }
  throw ConfigError("unknown group strategy");
}

const char* group_strategy_name(GroupStrategy strategy) {
  switch (strategy) {
    case GroupStrategy::kChromatic:
      return "chromatic";
    case GroupStrategy::kIndexBlocks:
      return "index-blocks";
    case GroupStrategy::kBfsBlocks:
      return "bfs-blocks";
    case GroupStrategy::kDegreeMajor:
      return "degree-major";
  }
  return "unknown";
}

std::optional<GroupStrategy> parse_group_strategy(const std::string& name) {
  for (const GroupStrategy s : all_group_strategies()) {
    if (name == group_strategy_name(s)) return s;
  }
  return std::nullopt;
}

std::vector<GroupStrategy> all_group_strategies() {
  return {GroupStrategy::kChromatic, GroupStrategy::kIndexBlocks,
          GroupStrategy::kBfsBlocks, GroupStrategy::kDegreeMajor};
}

}  // namespace cim::ising
