#include "ising/tsp_hamiltonian.hpp"

#include "util/error.hpp"

namespace cim::ising {

TspHamiltonian::TspHamiltonian(const tsp::Instance& instance,
                               Penalties penalties)
    : instance_(instance), n_(instance.size()), penalties_(penalties) {
  const auto w_max = static_cast<double>(instance.distance_upper_bound());
  if (penalties_.b <= 0.0) penalties_.b = 2.0 * w_max;
  if (penalties_.c <= 0.0) penalties_.c = 2.0 * w_max;
}

double TspHamiltonian::objective(std::span<const std::uint8_t> sigma) const {
  CIM_ASSERT(sigma.size() == spins());
  double total = 0.0;
  // Σ_i Σ_{k≠l} W_kl σ_ik σ_(i+1)l, order index cyclic.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t next = (i + 1) % n_;
    for (std::size_t k = 0; k < n_; ++k) {
      if (!sigma[spin_index(i, k, n_)]) continue;
      for (std::size_t l = 0; l < n_; ++l) {
        if (l == k || !sigma[spin_index(next, l, n_)]) continue;
        total += static_cast<double>(
            instance_.distance(static_cast<tsp::CityId>(k),
                               static_cast<tsp::CityId>(l)));
      }
    }
  }
  return total;
}

double TspHamiltonian::penalty(std::span<const std::uint8_t> sigma) const {
  CIM_ASSERT(sigma.size() == spins());
  double order_pen = 0.0;
  double city_pen = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    long long row = 0;
    for (std::size_t k = 0; k < n_; ++k) row += sigma[spin_index(i, k, n_)];
    order_pen += static_cast<double>((row - 1) * (row - 1));
  }
  for (std::size_t k = 0; k < n_; ++k) {
    long long col = 0;
    for (std::size_t i = 0; i < n_; ++i) col += sigma[spin_index(i, k, n_)];
    city_pen += static_cast<double>((col - 1) * (col - 1));
  }
  return penalties_.b * order_pen + penalties_.c * city_pen;
}

double TspHamiltonian::energy(std::span<const std::uint8_t> sigma) const {
  return penalties_.a * objective(sigma) + penalty(sigma);
}

double TspHamiltonian::local_energy(std::span<const std::uint8_t> sigma,
                                    std::size_t order,
                                    std::size_t city) const {
  CIM_ASSERT(sigma.size() == spins());
  CIM_ASSERT(order < n_ && city < n_);
  if (!sigma[spin_index(order, city, n_)]) return 0.0;
  const std::size_t prev = (order + n_ - 1) % n_;
  const std::size_t next = (order + 1) % n_;
  double acc = 0.0;
  for (std::size_t l = 0; l < n_; ++l) {
    if (l == city) continue;
    const auto w = static_cast<double>(
        instance_.distance(static_cast<tsp::CityId>(city),
                           static_cast<tsp::CityId>(l)));
    if (sigma[spin_index(prev, l, n_)]) acc += w;
    if (sigma[spin_index(next, l, n_)]) acc += w;
  }
  return penalties_.a * acc;
}

std::vector<std::uint8_t> TspHamiltonian::assignment_from_tour(
    const tsp::Tour& tour) const {
  CIM_REQUIRE(tour.is_valid(n_), "tour does not match instance");
  std::vector<std::uint8_t> sigma(spins(), 0);
  for (std::size_t i = 0; i < n_; ++i) {
    sigma[spin_index(i, tour.at(i), n_)] = 1;
  }
  return sigma;
}

tsp::Tour TspHamiltonian::tour_from_assignment(
    std::span<const std::uint8_t> sigma) const {
  CIM_REQUIRE(feasible(sigma), "assignment violates one-hot constraints");
  std::vector<tsp::CityId> order(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < n_; ++k) {
      if (sigma[spin_index(i, k, n_)]) {
        order[i] = static_cast<tsp::CityId>(k);
        break;
      }
    }
  }
  return tsp::Tour(std::move(order));
}

bool TspHamiltonian::feasible(std::span<const std::uint8_t> sigma) const {
  CIM_ASSERT(sigma.size() == spins());
  for (std::size_t i = 0; i < n_; ++i) {
    int row = 0;
    for (std::size_t k = 0; k < n_; ++k) row += sigma[spin_index(i, k, n_)];
    if (row != 1) return false;
  }
  for (std::size_t k = 0; k < n_; ++k) {
    int col = 0;
    for (std::size_t i = 0; i < n_; ++i) col += sigma[spin_index(i, k, n_)];
    if (col != 1) return false;
  }
  return true;
}

}  // namespace cim::ising
