#include "ising/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cim::ising {

IsingModel::IsingModel(std::size_t n_spins) : fields_(n_spins, 0.0) {
  CIM_REQUIRE(n_spins >= 1, "Ising model needs at least one spin");
}

void IsingModel::add_coupling(SpinIndex a, SpinIndex b, double j) {
  CIM_ASSERT(a < size() && b < size());
  CIM_REQUIRE(a != b, "self-coupling is not allowed");
  edges_.push_back({a, b, j});
  csr_valid_ = false;
}

void IsingModel::add_field(SpinIndex i, double h) {
  CIM_ASSERT(i < size());
  fields_[i] += h;
}

void IsingModel::ensure_csr() const {
  if (csr_valid_) return;
  const std::size_t n = size();
  std::vector<std::uint32_t> degree(n, 0);
  for (const Edge& e : edges_) {
    ++degree[e.a];
    ++degree[e.b];
  }
  row_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_offsets_[i + 1] = row_offsets_[i] + degree[i];
  }
  adjacency_.assign(row_offsets_[n], {});
  std::vector<std::uint32_t> cursor(row_offsets_.begin(),
                                    row_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[cursor[e.a]++] = {e.b, e.j};
    adjacency_[cursor[e.b]++] = {e.a, e.j};
  }
  csr_valid_ = true;
}

std::span<const IsingModel::Neighbor> IsingModel::neighbors(
    SpinIndex i) const {
  ensure_csr();
  return {adjacency_.data() + row_offsets_[i],
          adjacency_.data() + row_offsets_[i + 1]};
}

double IsingModel::hamiltonian(std::span<const Spin> spins) const {
  CIM_ASSERT(spins.size() == size());
  double h = 0.0;
  for (const Edge& e : edges_) {
    h -= e.j * static_cast<double>(spins[e.a]) *
         static_cast<double>(spins[e.b]);
  }
  for (std::size_t i = 0; i < size(); ++i) {
    h -= fields_[i] * static_cast<double>(spins[i]);
  }
  return h;
}

double IsingModel::local_energy(std::span<const Spin> spins,
                                SpinIndex i) const {
  CIM_ASSERT(spins.size() == size());
  double acc = fields_[i];
  for (const Neighbor& nb : neighbors(i)) {
    acc += nb.j * static_cast<double>(spins[nb.index]);
  }
  return -acc * static_cast<double>(spins[i]);
}

double IsingModel::flip_delta(std::span<const Spin> spins,
                              SpinIndex i) const {
  // Flipping σ_i negates its local energy; coupling terms appear once in
  // H, so ΔH = -2·H(σ_i).
  return -2.0 * local_energy(spins, i);
}

std::size_t IsingModel::metropolis_sweep(std::vector<Spin>& spins,
                                         double temperature,
                                         util::Rng& rng) const {
  CIM_ASSERT(spins.size() == size());
  std::size_t accepted = 0;
  for (std::size_t step = 0; step < size(); ++step) {
    const auto i = static_cast<SpinIndex>(rng.below(size()));
    const double delta = flip_delta(spins, i);
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.uniform() < std::exp(-delta / temperature));
    if (accept) {
      spins[i] = static_cast<Spin>(-spins[i]);
      ++accepted;
    }
  }
  return accepted;
}

std::vector<std::uint32_t> IsingModel::chromatic_partition() const {
  ensure_csr();
  const std::size_t n = size();
  constexpr std::uint32_t kUncolored = 0xFFFFFFFFU;
  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<char> used;
  for (SpinIndex i = 0; i < n; ++i) {
    used.assign(used.size(), 0);
    std::uint32_t max_needed = 0;
    for (const Neighbor& nb : neighbors(i)) {
      if (color[nb.index] == kUncolored) continue;
      if (color[nb.index] >= used.size()) used.resize(color[nb.index] + 1, 0);
      used[color[nb.index]] = 1;
      max_needed = std::max(max_needed, color[nb.index] + 1);
    }
    std::uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    color[i] = c;
  }
  return color;
}

std::vector<Spin> random_spins(std::size_t n, util::Rng& rng) {
  std::vector<Spin> spins(n);
  for (auto& s : spins) s = rng.chance(0.5) ? Spin{1} : Spin{-1};
  return spins;
}

}  // namespace cim::ising
