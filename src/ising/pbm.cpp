#include "ising/pbm.hpp"

#include <utility>

#include "util/error.hpp"

namespace cim::ising {

PbmState::PbmState(const tsp::Instance& instance, tsp::Tour initial)
    : instance_(instance), tour_(std::move(initial)) {
  CIM_REQUIRE(tour_.is_valid(instance_.size()),
              "PBM initial tour must be a permutation of the instance");
  length_ = tour_.length(instance_);
}

long long PbmState::local_energy(std::size_t order, tsp::CityId city) const {
  const std::size_t n = size();
  CIM_ASSERT(order < n);
  const tsp::CityId prev = tour_.at((order + n - 1) % n);
  const tsp::CityId next = tour_.at((order + 1) % n);
  long long acc = 0;
  if (prev != city) acc += instance_.distance(city, prev);
  if (next != city) acc += instance_.distance(city, next);
  return acc;
}

long long PbmState::swap_delta(std::size_t i, std::size_t j) const {
  const std::size_t n = size();
  CIM_ASSERT(i < n && j < n);
  if (i == j) return 0;

  const tsp::CityId k = tour_.at(i);
  const tsp::CityId l = tour_.at(j);

  // Two MACs with the pre-swap spin state.
  const long long before = local_energy(i, k) + local_energy(j, l);

  // Two MACs with the post-swap spin state: evaluate city l at order i and
  // city k at order j against neighbours that also reflect the swap.
  const auto neighbor_after = [&](std::size_t order) {
    const tsp::CityId c = tour_.at(order);
    if (order == i) return l;
    if (order == j) return k;
    return c;
  };
  const auto local_after = [&](std::size_t order, tsp::CityId city) {
    const tsp::CityId prev = neighbor_after((order + n - 1) % n);
    const tsp::CityId next = neighbor_after((order + 1) % n);
    long long acc = 0;
    if (prev != city) acc += instance_.distance(city, prev);
    if (next != city) acc += instance_.distance(city, next);
    return acc;
  };
  const long long after = local_after(i, l) + local_after(j, k);
  return after - before;
}

void PbmState::apply_swap(std::size_t i, std::size_t j) {
  const long long delta = swap_delta(i, j);
  auto& order = tour_.mutable_order();
  std::swap(order[i], order[j]);
  length_ += delta;
}

}  // namespace cim::ising
