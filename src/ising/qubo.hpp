// QUBO ↔ Ising conversion.
//
// Many COP formulations (including the paper's Eq. (3), whose σ_ik are
// 0/1 indicators) are naturally QUBO:  minimise xᵀQx, x ∈ {0,1}ⁿ. The
// standard substitution x = (1+σ)/2 maps any QUBO onto the ±1 Ising model
// the hardware anneals, with an additive constant offset:
//
//   xᵀQx = const + Σ_i h'_i σ_i + Σ_{i<j} J'_ij σ_i σ_j
//
// This module performs the conversion exactly (so TSP-style penalties or
// any user QUBO can be dropped onto the substrate) and converts energies
// back.
#pragma once

#include <cstdint>
#include <vector>

#include "ising/model.hpp"

namespace cim::ising {

/// Upper-triangular QUBO: minimise Σ_{i≤j} q(i,j)·x_i·x_j over x ∈ {0,1}ⁿ.
/// Diagonal entries are the linear terms (x² = x).
class Qubo {
 public:
  explicit Qubo(std::size_t n);

  std::size_t size() const { return n_; }

  /// Adds to coefficient q(i, j); (i, j) is symmetrised to i ≤ j.
  void add(SpinIndex i, SpinIndex j, double q);
  double coefficient(SpinIndex i, SpinIndex j) const;

  /// Objective value of a 0/1 assignment.
  double value(const std::vector<std::uint8_t>& x) const;

 private:
  std::size_t index(SpinIndex i, SpinIndex j) const;

  std::size_t n_ = 0;
  std::vector<double> q_;  // dense upper triangle incl. diagonal
};

/// The Ising image of a QUBO: model + constant offset such that
/// qubo.value(x) = offset − model.hamiltonian(σ)·(−1)… concretely:
///   qubo.value(x(σ)) = offset + ising_energy(σ)
/// where ising_energy = model.hamiltonian (H = −ΣJσσ − Σhσ).
struct IsingImage {
  IsingModel model;
  double offset = 0.0;

  /// Maps ±1 spins back to the 0/1 assignment.
  static std::vector<std::uint8_t> binary_from_spins(
      const std::vector<Spin>& spins);
  /// Maps 0/1 to ±1.
  static std::vector<Spin> spins_from_binary(
      const std::vector<std::uint8_t>& x);
};

/// Exact conversion (see file comment).
IsingImage to_ising(const Qubo& qubo);

}  // namespace cim::ising
