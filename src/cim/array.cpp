#include "cim/array.hpp"

#include "util/error.hpp"

namespace cim::hw {

CimArray::CimArray(ArrayGeometry geometry, Backend backend,
                   const noise::SramCellModel* model,
                   std::uint64_t cell_base)
    : geometry_(geometry) {
  CIM_REQUIRE(geometry_.p_max >= 1, "array needs p_max >= 1");
  CIM_REQUIRE(geometry_.window_rows >= 1 && geometry_.window_cols >= 1,
              "array needs at least one window");
  const WindowShape shape = geometry_.window();
  const std::size_t n_windows =
      static_cast<std::size_t>(geometry_.window_rows) * geometry_.window_cols;
  windows_.reserve(n_windows);
  const std::uint64_t cells_per_window =
      static_cast<std::uint64_t>(shape.weights()) * geometry_.weight_bits;
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::uint64_t base = cell_base + w * cells_per_window;
    if (backend == Backend::kFast) {
      windows_.push_back(make_fast_storage(shape.rows(), shape.cols(), model,
                                           base, geometry_.weight_bits));
    } else {
      windows_.push_back(make_bit_level_storage(shape.rows(), shape.cols(),
                                                model, base,
                                                geometry_.weight_bits));
    }
  }
}

std::size_t CimArray::window_index(std::uint32_t wrow,
                                   std::uint32_t wcol) const {
  CIM_ASSERT(wrow < geometry_.window_rows && wcol < geometry_.window_cols);
  return static_cast<std::size_t>(wrow) * geometry_.window_cols + wcol;
}

WeightStorage& CimArray::window(std::uint32_t wrow, std::uint32_t wcol) {
  return *windows_[window_index(wrow, wcol)];
}

const WeightStorage& CimArray::window(std::uint32_t wrow,
                                      std::uint32_t wcol) const {
  return *windows_[window_index(wrow, wcol)];
}

std::vector<std::int64_t> CimArray::cycle(
    std::uint32_t wcol, ColIndex cell_col,
    std::span<const std::vector<std::uint8_t>> inputs) {
  CIM_ASSERT(wcol < geometry_.window_cols);
  CIM_ASSERT(cell_col.get() < geometry_.window().cols());
  CIM_ASSERT(inputs.size() == geometry_.window_rows);
  std::vector<std::int64_t> results(geometry_.window_rows);
  for (std::uint32_t wrow = 0; wrow < geometry_.window_rows; ++wrow) {
    results[wrow] = window(wrow, wcol).mac(cell_col, inputs[wrow]);
  }
  ++compute_cycles_;
  return results;
}

void CimArray::write_back_all(const noise::SchedulePhase& phase) {
  for (auto& w : windows_) w->write_back(phase);
}

StorageCounters CimArray::total_counters() const {
  StorageCounters total;
  for (const auto& w : windows_) total += w->counters();
  return total;
}

}  // namespace cim::hw
