// Noisy weight storage backends.
//
// Both backends store a golden 8-bit weight image and expose the same
// semantics: a write-back restores the golden bits, then the pseudo-read
// error pattern of the current schedule phase corrupts up to `noisy_lsbs`
// low-order bit-cells toward each cell's preferred value (sticky until the
// next write-back). Randomness is counter-hashed from (model seed, global
// cell id, epoch), so the two backends produce bit-identical error
// patterns — a property the test suite checks.
//
//   * FastStorage    — materialises the corrupted byte per weight at
//                      write-back; MACs are plain integer dot products.
//                      Used for large instances.
//   * BitLevelStorage— explicit per-bit 14T cells, NOR multiplies and an
//                      AdderTree reduction per MAC; optionally flips cells
//                      on first access instead of at write-back
//                      (kFlipOnAccess), which is the more faithful
//                      temporal behaviour of pseudo-read.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cim/adder_tree.hpp"
#include "cim/bitslice.hpp"
#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"
#include "util/units.hpp"

namespace cim::hw {

using util::ColIndex;
using util::RowIndex;

/// Counters shared by all storage backends.
struct StorageCounters {
  std::uint64_t macs = 0;              ///< column MAC operations
  std::uint64_t mac_bit_reads = 0;     ///< weight bit-cells read by MACs
  std::uint64_t writeback_events = 0;  ///< write-back operations
  std::uint64_t writeback_bits = 0;    ///< bit-cells written back
  std::uint64_t pseudo_read_flips = 0; ///< bit-cells corrupted by noise

  StorageCounters& operator+=(const StorageCounters& other);
};

/// One request of a packed MAC batch (WeightStorage::mac_packed_batch):
/// the addressed column plus the index of its packed input vector in the
/// batch's shared input arena.
struct PackedMac {
  ColIndex col{0};
  std::uint32_t input = 0;  ///< index into the batch's input arena
};

class WeightStorage {
 public:
  virtual ~WeightStorage() = default;

  virtual std::uint32_t rows() const = 0;
  virtual std::uint32_t cols() const = 0;
  virtual std::uint32_t weight_bits() const = 0;

  /// Installs the golden weight image (row-major rows×cols) and performs an
  /// initial noise-free write.
  virtual void write(std::span<const std::uint8_t> golden) = 0;

  /// Restores golden bits, then applies the phase's pseudo-read corruption.
  virtual void write_back(const noise::SchedulePhase& phase) = 0;

  /// Column MAC: Σ_r input[r] · weight[r][col] over the current (possibly
  /// corrupted) weights. input has rows() entries of 0/1. The column is a
  /// tagged index (util::ColIndex) so a row count can't be passed silently.
  virtual std::int64_t mac(ColIndex col,
                           std::span<const std::uint8_t> input) = 0;

  /// Sparse column MAC: the same operation with the input given as the
  /// list of set rows (distinct, each < rows()) instead of a dense 0/1
  /// vector — the annealer's swap inputs carry exactly p + 2 set bits.
  ///
  /// Equivalence invariant: for any input vector and its set-row list,
  /// mac() and mac_sparse() return the same value, leave the storage in
  /// the same state (including lazy pseudo-read corruption, which touches
  /// every cell of the addressed column on real hardware) and charge the
  /// same StorageCounters. The counters model hardware row *reads*, not
  /// simulator work, so `mac_bit_reads` still advances by rows()·bits.
  virtual std::int64_t mac_sparse(
      ColIndex col, std::span<const std::uint32_t> active_rows) = 0;

  /// Packed column MAC: the same operation with the input as packed 0/1
  /// bits — bit r of word r/64 is row r, packed_words(rows()) words total.
  /// The bit-sliced vector swap kernel's entry point.
  ///
  /// The mac()/mac_sparse() equivalence invariant extends here verbatim:
  /// same value, same storage state (including lazy whole-column
  /// pseudo-read corruption) and same StorageCounters for any input and
  /// its packed form. The scalar paths stay the determinism oracle the
  /// test suite checks this against.
  virtual std::int64_t mac_packed(ColIndex col,
                                  std::span<const std::uint64_t> input) = 0;

  /// Batch of packed MACs over one shared input arena: request k reads the
  /// `words_per_input` words at `reqs[k].input * words_per_input`, and its
  /// result lands in out[k]. Semantically identical to calling mac_packed
  /// per request in order (state, values, counters); backends may override
  /// to amortise virtual dispatch and counter updates across the batch —
  /// the multi-replica same-color swap evaluation issues 4·replicas MACs
  /// per call.
  virtual void mac_packed_batch(std::span<const PackedMac> reqs,
                                std::span<const std::uint64_t> inputs,
                                std::uint32_t words_per_input,
                                std::span<std::int64_t> out);

  /// Charges the hardware cost of re-issuing a MAC whose value the caller
  /// already holds (the annealer's partial-sum memo). The counters model
  /// hardware row reads, so a memoized repeat still pays the full
  /// rows()·bits read like every mac() variant; the host-side reduction is
  /// what the memo skips. Sound only for a (column, input) pair already
  /// MAC'd since the last write_back — by then any lazy pseudo-read
  /// corruption of the column has settled (touched cells never re-draw),
  /// so the repeat MAC would have been a pure function returning the
  /// memoized value and flipping nothing.
  void charge_repeat_mac() {
    ++counters_.macs;
    counters_.mac_bit_reads +=
        static_cast<std::uint64_t>(rows()) * weight_bits();
  }

  /// Current (possibly corrupted) weight value — for tests and debugging.
  virtual std::uint8_t weight(RowIndex row, ColIndex col) const = 0;

  const StorageCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 protected:
  StorageCounters counters_;
};

enum class PseudoReadPolicy {
  kSettleAtWriteBack,  ///< corruption applied in full at write-back
  kFlipOnAccess,       ///< cells flip on their first noisy access
};

/// Creates a fast (byte-materialised) backend.
/// `cell_base` must give every storage a disjoint global cell-id range of
/// rows*cols*weight_bits ids.
std::unique_ptr<WeightStorage> make_fast_storage(
    std::uint32_t rows, std::uint32_t cols,
    const noise::SramCellModel* model, std::uint64_t cell_base,
    std::uint32_t weight_bits = 8);

/// Creates the bit-level 14T-cell backend.
std::unique_ptr<WeightStorage> make_bit_level_storage(
    std::uint32_t rows, std::uint32_t cols,
    const noise::SramCellModel* model, std::uint64_t cell_base,
    std::uint32_t weight_bits = 8,
    PseudoReadPolicy policy = PseudoReadPolicy::kSettleAtWriteBack);

}  // namespace cim::hw
