// Aggregated hardware activity of one solve — the interface between the
// annealer (which drives the hardware and accumulates the counters) and
// the PPA models (which charge energy/latency for them). Lives in the hw
// layer so src/ppa never has to include the annealer: the PPA models
// consume activity, not solver internals (the layer-dag rule enforces
// this direction).
#pragma once

#include <cstdint>

#include "cim/dataflow.hpp"
#include "cim/storage.hpp"
#include "util/telemetry.hpp"

namespace cim::hw {

struct HardwareActivity {
  StorageCounters storage;
  DataflowTracker dataflow;
  std::uint64_t update_cycles = 0;
  std::uint64_t writeback_cycles = 0;
  std::uint64_t swap_attempts = 0;
};

/// Publishes the storage counters as monotonic "cim.*" registry
/// counters. Deltas accumulate: each call adds the struct's totals, so
/// repeated solves (or ensemble replicas, possibly concurrent — the
/// counters are lock-free) sum in the registry. No-ops when telemetry
/// is compiled off.
void publish_storage(const StorageCounters& counters,
                     util::telemetry::Registry& registry);

/// Publishes dataflow volumes as "cim.dataflow.*" counters.
void publish_dataflow(const DataflowTracker& dataflow,
                      util::telemetry::Registry& registry);

/// Publishes one solve's aggregated activity: storage + dataflow plus
/// the cycle/attempt totals.
void publish_activity(const HardwareActivity& activity,
                      util::telemetry::Registry& registry);

}  // namespace cim::hw
