// Aggregated hardware activity of one solve — the interface between the
// annealer (which drives the hardware and accumulates the counters) and
// the PPA models (which charge energy/latency for them). Lives in the hw
// layer so src/ppa never has to include the annealer: the PPA models
// consume activity, not solver internals (the layer-dag rule enforces
// this direction).
#pragma once

#include <cstdint>

#include "cim/dataflow.hpp"
#include "cim/storage.hpp"

namespace cim::hw {

struct HardwareActivity {
  StorageCounters storage;
  DataflowTracker dataflow;
  std::uint64_t update_cycles = 0;
  std::uint64_t writeback_cycles = 0;
  std::uint64_t swap_attempts = 0;
};

}  // namespace cim::hw
