// Bit-sliced (structure-of-arrays) views of the CIM datapath.
//
// The paper's throughput rests on the 14T-cell array evaluating many
// cells per cycle: every cell's NOR product is one bit, so 64 cells of a
// bit-plane fit one host word and the adder-tree reduction becomes
// AND + popcount (util/simd.hpp). This header owns the two packed
// representations the vector swap kernel runs on:
//
//   * PackedBits     — a spin/input vector as packed words (bit r of word
//                      r/64 is row r), maintained incrementally by the
//                      annealer exactly like its dense 0/1 mask;
//   * BitPlaneMatrix — the column-major bit-plane mirror of a rows×cols
//                      multi-bit weight image: plane (col, b) is
//                      packed_words(rows) contiguous words and the `bits`
//                      planes of one column are contiguous (LSB first),
//                      so one MAC streams bits×words sequential words.
//
// These are *mirrors*, not a third storage backend: the byte/bit-cell
// arrays of cim/storage.cpp stay authoritative (noise corruption mutates
// them), and the storages repack the mirror lazily after each write /
// write-back. Results are bit-identical to the scalar paths — popcount
// per plane followed by shift-and-add is exactly the adder-tree sum — and
// the hardware counters are charged by the storage entry points, never
// here (the counter model charges physical work, not host instructions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace cim::hw {

/// Number of 64-bit words holding `rows` packed bits.
constexpr std::uint32_t packed_words(std::uint32_t rows) {
  return (rows + 63U) / 64U;
}

/// A packed 0/1 row vector (one bit per window row).
class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(std::uint32_t rows) { resize(rows); }

  /// Resizes to `rows` bits, all clear.
  void resize(std::uint32_t rows) {
    rows_ = rows;
    words_.assign(packed_words(rows), 0);
  }

  std::uint32_t rows() const { return rows_; }

  void set(std::uint32_t r) {
    CIM_ASSERT(r < rows_);
    words_[r >> 6] |= std::uint64_t{1} << (r & 63U);
  }
  void clear(std::uint32_t r) {
    CIM_ASSERT(r < rows_);
    words_[r >> 6] &= ~(std::uint64_t{1} << (r & 63U));
  }
  bool test(std::uint32_t r) const {
    CIM_ASSERT(r < rows_);
    return ((words_[r >> 6] >> (r & 63U)) & 1U) != 0;
  }

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

 private:
  std::uint32_t rows_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sets or clears bit `row` in a packed word span (the free-function form
/// used by the annealer's structure-of-arrays spin arena, where a slot
/// owns a sub-span of one shared word vector).
inline void packed_assign(std::span<std::uint64_t> words, std::uint32_t row,
                          bool value) {
  const std::uint64_t mask = std::uint64_t{1} << (row & 63U);
  if (value) {
    words[row >> 6] |= mask;
  } else {
    words[row >> 6] &= ~mask;
  }
}

/// Column-major bit-plane mirror of a multi-bit weight image.
class BitPlaneMatrix {
 public:
  BitPlaneMatrix() = default;

  /// Shapes the mirror for a rows×cols image of `bits`-bit weights; all
  /// planes zero.
  void reset(std::uint32_t rows, std::uint32_t cols, std::uint32_t bits);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t bits() const { return bits_; }
  /// Packed words per bit-plane (= packed_words(rows)).
  std::uint32_t words() const { return words_; }

  /// Writes every bit of weight (row, col). `value` must fit `bits`.
  void set_weight(std::uint32_t row, std::uint32_t col, std::uint8_t value);

  /// The `bits` contiguous planes of one column (bits()·words() words,
  /// LSB plane first).
  std::span<const std::uint64_t> column_planes(std::uint32_t col) const {
    CIM_ASSERT(col < cols_);
    const std::size_t stride = static_cast<std::size_t>(bits_) * words_;
    return {planes_.data() + col * stride, stride};
  }

  /// Bit-sliced column MAC: Σ_b popcount(input & plane_b) << b. Pure
  /// compute — the calling storage charges the hardware counters.
  std::uint64_t mac(std::uint32_t col,
                    std::span<const std::uint64_t> input) const;

  /// Per-plane product sums of one column (out has bits() entries) — the
  /// packed counterpart of the sparse kernel's plane_sums, feeding
  /// AdderTree::shift_and_add_sparse on the bit-level backend.
  void plane_sums(std::uint32_t col, std::span<const std::uint64_t> input,
                  std::span<std::uint32_t> out) const;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::uint32_t bits_ = 0;
  std::uint32_t words_ = 0;
  std::vector<std::uint64_t> planes_;
};

}  // namespace cim::hw
