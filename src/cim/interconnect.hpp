// Inter-array interconnect simulation (Fig. 5(e)).
//
// Clusters map onto arrays ten-windows-at-a-time; during a chromatic
// update phase, a cluster whose ring neighbour lives on the adjacent
// array needs that neighbour's p boundary bits across the array edge —
// downstream for solid (even-position) phases, upstream for dash phases.
// This module simulates the transfer schedule for one level and verifies
// the paper's claims: only boundary data moves, each link carries at most
// p bits per phase, and the two directions never collide (they occupy
// different phases).
#pragma once

#include <cstdint>
#include <vector>

namespace cim::hw {

struct InterconnectConfig {
  std::size_t clusters = 0;          ///< ring length at this level
  std::uint32_t p = 3;               ///< boundary width (bits per transfer)
  std::size_t windows_per_array = 10;///< 5×2 windows per array
};

struct LinkActivity {
  std::size_t link = 0;          ///< boundary between array `link` and `link+1`
  std::uint64_t downstream_bits = 0;
  std::uint64_t upstream_bits = 0;
};

struct InterconnectReport {
  std::size_t arrays = 0;
  std::size_t links = 0;               ///< arrays − 1 chain links
  std::uint64_t total_bits_per_iteration = 0;
  std::uint64_t max_link_bits_per_phase = 0;
  /// Ring-closure traffic between the first and last array; routed on a
  /// dedicated return path, not the chain links.
  std::uint64_t wrap_bits_per_iteration = 0;
  bool contention_free = true;  ///< no link carries both directions in a phase
  std::vector<LinkActivity> per_link;  ///< accumulated over one iteration
};

/// Simulates one full update iteration (solid phase + dash phase) of a
/// ring of `clusters` clusters and reports the link traffic.
InterconnectReport simulate_iteration(const InterconnectConfig& config);

}  // namespace cim::hw
