#include "cim/dataflow.hpp"

namespace cim::hw {

void DataflowTracker::record_input_shift(std::uint32_t bits_shifted) {
  ++shift_events_;
  bits_shifted_ += bits_shifted;
}

void DataflowTracker::record_edge_transfer(UpdateParity parity,
                                           std::uint32_t p_bits) {
  switch (parity) {
    case UpdateParity::kSolid:
      ++downstream_;
      break;
    case UpdateParity::kDash:
      ++upstream_;
      break;
    case UpdateParity::kThird:
      ++third_phase_;
      break;
  }
  edge_bits_ += p_bits;
}

DataflowTracker& DataflowTracker::operator+=(const DataflowTracker& other) {
  shift_events_ += other.shift_events_;
  bits_shifted_ += other.bits_shifted_;
  downstream_ += other.downstream_;
  upstream_ += other.upstream_;
  third_phase_ += other.third_phase_;
  edge_bits_ += other.edge_bits_;
  return *this;
}

}  // namespace cim::hw
