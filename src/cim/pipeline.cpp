#include "cim/pipeline.hpp"

#include "cim/adder_tree.hpp"
#include "util/error.hpp"

namespace cim::hw {

const char* stage_name(StageKind kind) {
  switch (kind) {
    case StageKind::kInputFetch:
      return "IF";
    case StageKind::kPseudoReadNor:
      return "RD";
    case StageKind::kAdderTree:
      return "AT";
    case StageKind::kShiftAdd:
      return "SA";
    case StageKind::kCompare:
      return "CMP";
  }
  return "?";
}

PipelineModel::PipelineModel(WindowShape shape, std::uint32_t weight_bits)
    : shape_(shape), weight_bits_(weight_bits) {
  CIM_REQUIRE(weight_bits_ >= 1, "pipeline needs at least 1 weight bit");
  stages_.push_back({StageKind::kInputFetch, 1, "input select/shift"});
  stages_.push_back({StageKind::kPseudoReadNor, 1, "pseudo-read + NOR"});
  const AdderTree tree(shape_.rows());
  for (std::uint32_t level = 0; level < tree.depth(); ++level) {
    stages_.push_back({StageKind::kAdderTree, 1,
                       "adder tree level " + std::to_string(level)});
  }
  stages_.push_back({StageKind::kShiftAdd, 1, "shift-and-add"});
  stages_.push_back({StageKind::kCompare, 1, "energy compare"});
}

std::uint64_t PipelineModel::mac_latency() const {
  // Compare is not part of a lone MAC; every other stage is.
  return static_cast<std::uint64_t>(stages_.size()) - 1;
}

std::uint64_t PipelineModel::update_latency() const {
  // 4 MACs issue back-to-back; the final compare follows the last MAC's
  // shift-and-add.
  return 3 + mac_latency() + 1;
}

UpdateTimeline PipelineModel::trace_update() const {
  UpdateTimeline timeline;
  for (std::uint32_t mac = 0; mac < 4; ++mac) {
    std::uint64_t cycle = mac;  // issue slot (fully pipelined)
    for (const PipelineStage& stage : stages_) {
      if (stage.kind == StageKind::kCompare) continue;
      timeline.events.push_back({cycle, mac, stage.kind});
      cycle += stage.cycles;
    }
    // Energy comparisons happen after MAC 1 (before-energy complete) and
    // MAC 3 (after-energy complete; accept decision).
    if (mac == 1 || mac == 3) {
      timeline.events.push_back({cycle, mac, StageKind::kCompare});
      cycle += 1;
    }
    timeline.total_cycles = std::max(timeline.total_cycles, cycle);
  }
  return timeline;
}

}  // namespace cim::hw
