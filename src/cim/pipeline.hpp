// Microarchitectural pipeline model of one swap update (Fig. 5(a)).
//
// The aggregate timing model charges 4 cycles per update (one per MAC at
// issue rate 1/cycle); this model exposes the stage structure underneath:
//
//   IF  — input register select / shift-up realignment
//   RD  — pseudo-read: word-line assert, NOR product evaluation
//   AT… — adder-tree reduction, one stage per tree level
//   SA  — shift-and-add across the 8 bit planes (pipelined per plane)
//   CMP — energy comparison / accept decision (after the 2nd and 4th MAC)
//
// All stages are pipelined, so back-to-back MACs issue every cycle; a
// single update's *latency* is 4 issue slots plus the pipeline fill.
// The model emits a cycle-by-cycle trace for inspection and is checked
// against the aggregate model's throughput numbers in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cim/window.hpp"

namespace cim::hw {

enum class StageKind : std::uint8_t {
  kInputFetch,
  kPseudoReadNor,
  kAdderTree,
  kShiftAdd,
  kCompare,
};

const char* stage_name(StageKind kind);

struct PipelineStage {
  StageKind kind = StageKind::kInputFetch;
  std::uint32_t cycles = 1;  ///< occupancy per MAC (1: fully pipelined)
  std::string label;
};

struct UpdateTimeline {
  struct Event {
    std::uint64_t cycle = 0;
    std::uint32_t mac_index = 0;  ///< 0..3 within the swap update
    StageKind stage = StageKind::kInputFetch;
  };
  std::vector<Event> events;
  std::uint64_t total_cycles = 0;  ///< last event cycle + 1
};

class PipelineModel {
 public:
  explicit PipelineModel(WindowShape shape, std::uint32_t weight_bits = 8);

  const std::vector<PipelineStage>& stages() const { return stages_; }
  /// Pipeline depth in stages.
  std::size_t depth() const { return stages_.size(); }
  /// Latency of one MAC through the whole pipe (cycles).
  std::uint64_t mac_latency() const;
  /// Cycles from first issue to the accept decision of a 4-MAC update.
  std::uint64_t update_latency() const;
  /// Issue interval between consecutive MACs (1 when fully pipelined).
  std::uint64_t issue_interval() const { return 1; }

  /// Cycle-accurate trace of one swap update (4 MACs + 2 compares).
  UpdateTimeline trace_update() const;

 private:
  WindowShape shape_;
  std::uint32_t weight_bits_ = 8;
  std::vector<PipelineStage> stages_;
};

}  // namespace cim::hw
