// Physical CIM array model (§III.B, Fig. 5(c)): a grid of weight windows
// (the paper evaluates 5 window-rows × 2 window-columns per array) sharing
// peripherals. Per cycle the window MUX enables one window column (odd or
// even clusters) and the cell MUX one parameter column inside the window;
// every window row then computes one MAC in parallel through its own adder
// tree.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cim/storage.hpp"
#include "cim/window.hpp"

namespace cim::hw {

struct ArrayGeometry {
  std::uint32_t p_max = 3;
  std::uint32_t window_rows = 5;   ///< windows stacked vertically
  std::uint32_t window_cols = 2;   ///< windows muxed horizontally
  std::uint32_t weight_bits = 8;

  WindowShape window() const { return WindowShape::hardware(p_max); }
  /// Physical cell rows (windows share rows across a window row).
  std::uint32_t cell_rows() const { return window_rows * window().rows(); }
  /// Physical bit-cell columns (each weight is weight_bits cells wide).
  std::uint32_t cell_cols() const {
    return window_cols * window().cols() * weight_bits;
  }
  std::size_t weights() const {
    return static_cast<std::size_t>(window_rows) * window_cols *
           window().weights();
  }
  std::size_t bits() const { return weights() * weight_bits; }
};

enum class Backend { kFast, kBitLevel };

/// A functional array: windows are independently writable; one cycle
/// computes window_rows MACs on the selected (window column, cell column).
class CimArray {
 public:
  CimArray(ArrayGeometry geometry, Backend backend,
           const noise::SramCellModel* model, std::uint64_t cell_base);

  const ArrayGeometry& geometry() const { return geometry_; }

  /// Access a window's storage (row-major window index).
  WeightStorage& window(std::uint32_t wrow, std::uint32_t wcol);
  const WeightStorage& window(std::uint32_t wrow, std::uint32_t wcol) const;

  /// One compute cycle: selects `wcol` via the window MUX and `cell_col`
  /// via the cell MUX, and returns the MAC of every window row.
  /// `inputs[wrow]` is that window's input bit-vector.
  std::vector<std::int64_t> cycle(
      std::uint32_t wcol, ColIndex cell_col,
      std::span<const std::vector<std::uint8_t>> inputs);

  /// Write-back every window (the periodic weight refresh).
  void write_back_all(const noise::SchedulePhase& phase);

  std::uint64_t compute_cycles() const { return compute_cycles_; }
  StorageCounters total_counters() const;

 private:
  std::size_t window_index(std::uint32_t wrow, std::uint32_t wcol) const;

  ArrayGeometry geometry_;
  std::vector<std::unique_ptr<WeightStorage>> windows_;
  std::uint64_t compute_cycles_ = 0;
};

}  // namespace cim::hw
