#include "cim/chip.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cim::hw {

ChipLayout plan_chip(const ChipConfig& config) {
  CIM_REQUIRE(config.n_cities >= 1, "chip needs a problem size");
  CIM_REQUIRE(config.p >= 1, "chip needs p >= 1");

  const double n = static_cast<double>(config.n_cities);
  const double p = static_cast<double>(config.p);
  const double weights_per_window = (p * p + 2.0 * p) * p * p;

  ChipLayout layout;
  // Window count per the paper:
  //   fixed:         N/p clusters;
  //   semi-flexible: 2N/(1+p_max) clusters, each provisioned at p_max.
  const double windows = config.strategy == SizingStrategy::kFixed
                             ? n / p
                             : 2.0 * n / (1.0 + p);
  layout.windows = static_cast<std::size_t>(std::ceil(windows));
  layout.weights = static_cast<std::size_t>(
      std::ceil(windows * weights_per_window));
  layout.capacity_bits = layout.weights * config.array.weight_bits;

  const std::size_t per_array = static_cast<std::size_t>(
      config.array.window_rows) * config.array.window_cols;
  layout.arrays = (layout.windows + per_array - 1) / per_array;
  return layout;
}

}  // namespace cim::hw
