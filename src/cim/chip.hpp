// Chip-level organisation: how many compact windows a problem needs, how
// they pack into physical arrays, and the resulting SRAM capacity. These
// are the formulas verified against Table I and the 46.4 Mb headline
// (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "cim/array.hpp"

namespace cim::hw {

enum class SizingStrategy {
  kFixed,         ///< every cluster holds exactly p elements
  kSemiFlexible,  ///< sizes 1..p_max, mean (1+p_max)/2, redundant columns
};

struct ChipConfig {
  std::size_t n_cities = 0;
  std::uint32_t p = 3;  ///< p (fixed) or p_max (semi-flexible)
  SizingStrategy strategy = SizingStrategy::kSemiFlexible;
  ArrayGeometry array;  ///< array.p_max is overwritten with `p`
};

struct ChipLayout {
  std::size_t windows = 0;        ///< compact weight windows (= clusters)
  std::size_t arrays = 0;         ///< physical arrays (windows / per-array)
  std::size_t weights = 0;        ///< total stored weights
  std::size_t capacity_bits = 0;  ///< weights × precision
  double capacity_bytes() const {
    return static_cast<double>(capacity_bits) / 8.0;
  }
};

/// Lays out the bottom clustering level (which dominates: upper levels are
/// re-mapped onto the same arrays level-by-level, so the chip is sized for
/// the leaf level).
ChipLayout plan_chip(const ChipConfig& config);

}  // namespace cim::hw
