#include "cim/adder_tree.hpp"

#include <vector>

#include "util/error.hpp"

namespace cim::hw {

AdderTree::AdderTree(std::uint32_t fan_in) : fan_in_(fan_in) {
  CIM_REQUIRE(fan_in >= 1, "adder tree needs at least one input");
  depth_ = 0;
  std::uint32_t width = fan_in_;
  adders_ = 0;
  while (width > 1) {
    adders_ += width / 2;
    width = (width + 1) / 2;
    ++depth_;
  }
}

std::uint32_t AdderTree::reduce(std::span<const std::uint8_t> products) {
  CIM_REQUIRE(products.size() == fan_in_,
              "adder tree reduce: product plane size does not match the "
              "tree fan-in");
  // Model the pairwise reduction levels explicitly (equivalent to a plain
  // sum, but mirrors the hardware structure and exercises the counters).
  std::vector<std::uint32_t> level(products.begin(), products.end());
  while (level.size() > 1) {
    std::vector<std::uint32_t> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(level[i] + level[i + 1]);
      ++adder_ops_;
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  ++reductions_;
  return level.empty() ? 0U : level.front();
}

std::uint64_t AdderTree::shift_and_add(std::span<const std::uint8_t> planes,
                                       std::uint32_t bits) {
  CIM_REQUIRE(bits >= 1, "adder tree shift-and-add needs at least one plane");
  CIM_REQUIRE(planes.size() == static_cast<std::size_t>(bits) * fan_in_,
              "adder tree shift-and-add: plane buffer size does not match "
              "bits x fan-in");
  std::uint64_t acc = 0;
  for (std::uint32_t b = 0; b < bits; ++b) {
    const std::uint32_t plane_sum =
        reduce(planes.subspan(static_cast<std::size_t>(b) * fan_in_, fan_in_));
    acc += static_cast<std::uint64_t>(plane_sum) << b;
  }
  return acc;
}

std::uint64_t AdderTree::shift_and_add_sparse(
    std::span<const std::uint32_t> plane_sums) {
  CIM_REQUIRE(!plane_sums.empty(),
              "adder tree shift-and-add needs at least one plane");
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < plane_sums.size(); ++b) {
    CIM_REQUIRE(plane_sums[b] <= fan_in_,
                "adder tree plane product sum exceeds the tree fan-in");
    // Counter model: the physical tree reduces all fan_in_ products of the
    // plane regardless of how many input rows are set.
    adder_ops_ += fan_in_ > 0 ? fan_in_ - 1 : 0;
    ++reductions_;
    acc += static_cast<std::uint64_t>(plane_sums[b]) << b;
  }
  return acc;
}

void AdderTree::reset_counters() {
  reductions_ = 0;
  adder_ops_ = 0;
}

}  // namespace cim::hw
