#include "cim/storage.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace cim::hw {

StorageCounters& StorageCounters::operator+=(const StorageCounters& other) {
  macs += other.macs;
  mac_bit_reads += other.mac_bit_reads;
  writeback_events += other.writeback_events;
  writeback_bits += other.writeback_bits;
  pseudo_read_flips += other.pseudo_read_flips;
  return *this;
}

void WeightStorage::mac_packed_batch(std::span<const PackedMac> reqs,
                                     std::span<const std::uint64_t> inputs,
                                     std::uint32_t words_per_input,
                                     std::span<std::int64_t> out) {
  CIM_REQUIRE(out.size() == reqs.size(),
              "packed MAC batch output span must have one entry per request");
  CIM_REQUIRE(words_per_input == packed_words(rows()),
              "packed MAC batch word stride does not match the window's "
              "packed row count");
  for (std::size_t k = 0; k < reqs.size(); ++k) {
    const std::size_t base =
        static_cast<std::size_t>(reqs[k].input) * words_per_input;
    CIM_REQUIRE(base + words_per_input <= inputs.size(),
                "packed MAC batch request addresses past the input arena");
    out[k] = mac_packed(reqs[k].col, inputs.subspan(base, words_per_input));
  }
}

namespace {

class StorageBase : public WeightStorage {
 public:
  StorageBase(std::uint32_t rows, std::uint32_t cols,
              const noise::SramCellModel* model, std::uint64_t cell_base,
              std::uint32_t weight_bits)
      : rows_(rows),
        cols_(cols),
        bits_(weight_bits),
        model_(model),
        cell_base_(cell_base) {
    CIM_REQUIRE(rows_ >= 1 && cols_ >= 1, "storage needs a non-empty grid");
    CIM_REQUIRE(bits_ >= 1 && bits_ <= 8, "weight precision must be 1..8");
  }

  std::uint32_t rows() const override { return rows_; }
  std::uint32_t cols() const override { return cols_; }
  std::uint32_t weight_bits() const override { return bits_; }

 protected:
  std::size_t weight_count() const {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  std::size_t index(std::uint32_t row, std::uint32_t col) const {
    CIM_ASSERT(row < rows_ && col < cols_);
    return static_cast<std::size_t>(row) * cols_ + col;
  }
  std::uint64_t cell_id(std::size_t weight_index, std::uint32_t bit) const {
    return cell_base_ + static_cast<std::uint64_t>(weight_index) * bits_ +
           bit;
  }
  /// Weight values must fit the configured precision.
  void validate_range(std::span<const std::uint8_t> golden) const {
    const std::uint32_t limit = 1U << bits_;
    for (const std::uint8_t w : golden) {
      CIM_REQUIRE(w < limit, "weight value exceeds configured precision");
    }
  }

  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint32_t bits_;
  const noise::SramCellModel* model_;
  std::uint64_t cell_base_;
};

class FastStorage final : public StorageBase {
 public:
  using StorageBase::StorageBase;

  void write(std::span<const std::uint8_t> golden) override {
    CIM_REQUIRE(golden.size() == weight_count(),
                "weight image size mismatch");
    validate_range(golden);
    golden_.assign(golden.begin(), golden.end());
    current_ = golden_;
    packed_valid_ = false;
    apply_stuck_faults();
  }

  void write_back(const noise::SchedulePhase& phase) override {
    CIM_ASSERT_MSG(!golden_.empty(), "write_back before write");
    current_ = golden_;
    packed_valid_ = false;
    ++counters_.writeback_events;
    counters_.writeback_bits += weight_count() * bits_;
    apply_stuck_faults();
    if (!model_ || phase.noisy_lsbs == 0) return;
    const std::uint32_t noisy = std::min(phase.noisy_lsbs, bits_);
    for (std::size_t w = 0; w < weight_count(); ++w) {
      // Corrupt on top of the stuck-adjusted value (current_, not
      // golden_): a stuck bit already holds its preferred value, so the
      // settle rule leaves it alone — matching BitLevelStorage bit for
      // bit. Starting from golden_ would erase the hard faults
      // apply_stuck_faults() just wrote.
      std::uint8_t value = current_[w];
      for (std::uint32_t b = 0; b < noisy; ++b) {
        const bool bit = (value >> b) & 1U;
        const bool settled =
            model_->settled_value(cell_id(w, b), phase.epoch, phase.vdd, bit);
        if (settled != bit) {
          value = static_cast<std::uint8_t>(value ^ (1U << b));
          ++counters_.pseudo_read_flips;
        }
      }
      current_[w] = value;
    }
  }

  std::int64_t mac(ColIndex col_idx,
                   std::span<const std::uint8_t> input) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    CIM_ASSERT(input.size() == rows_);
    std::int64_t acc = 0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (input[r]) acc += current_[index(r, col)];
    }
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return acc;
  }

  std::int64_t mac_sparse(
      ColIndex col_idx,
      std::span<const std::uint32_t> active_rows) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    std::int64_t acc = 0;
    for (const std::uint32_t r : active_rows) {
      acc += current_[index(r, col)];
    }
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return acc;
  }

  std::int64_t mac_packed(ColIndex col_idx,
                          std::span<const std::uint64_t> input) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    ensure_packed();
    const std::int64_t acc = static_cast<std::int64_t>(packed_.mac(col, input));
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return acc;
  }

  void mac_packed_batch(std::span<const PackedMac> reqs,
                        std::span<const std::uint64_t> inputs,
                        std::uint32_t words_per_input,
                        std::span<std::int64_t> out) override {
    CIM_REQUIRE(out.size() == reqs.size(),
                "packed MAC batch output span must have one entry per "
                "request");
    CIM_REQUIRE(words_per_input == packed_words(rows_),
                "packed MAC batch word stride does not match the window's "
                "packed row count");
    ensure_packed();
    in_ptrs_.resize(reqs.size());
    plane_ptrs_.resize(reqs.size());
    for (std::size_t k = 0; k < reqs.size(); ++k) {
      const std::uint32_t col = reqs[k].col.get();
      CIM_ASSERT(col < cols_);
      const std::size_t base =
          static_cast<std::size_t>(reqs[k].input) * words_per_input;
      CIM_REQUIRE(base + words_per_input <= inputs.size(),
                  "packed MAC batch request addresses past the input arena");
      in_ptrs_[k] = inputs.data() + base;
      plane_ptrs_[k] = packed_.column_planes(col).data();
    }
    // One kernel call for the whole batch: the per-MAC dispatch and call
    // overhead dominates small windows.
    util::simd::mac_bitplanes_batch(in_ptrs_.data(), plane_ptrs_.data(),
                                    packed_.words(), bits_, out.data(),
                                    reqs.size());
    // Bulk charge: one update per batch, but the same totals as the
    // request-at-a-time loop — the counters model per-MAC hardware work.
    counters_.macs += reqs.size();
    counters_.mac_bit_reads +=
        static_cast<std::uint64_t>(reqs.size()) * rows_ * bits_;
  }

  // Test/debug observability peek, not a modelled wordline access — the
  // hardware never reads single weights outside a MAC.
  // NOLINT(cim-counter-charge)
  std::uint8_t weight(RowIndex row, ColIndex col) const override {
    return current_[index(row.get(), col.get())];
  }

 private:
  // Rebuilds the bit-plane mirror from the corrupted byte image. Pure
  // host-side re-layout of already-read state — the physical reads are
  // charged by the MAC entry points, so the loop over current_ here is
  // deliberately uncharged. NOLINT(cim-counter-charge)
  void ensure_packed() {
    if (packed_valid_) return;
    packed_.reset(rows_, cols_, bits_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      for (std::uint32_t c = 0; c < cols_; ++c) {
        packed_.set_weight(r, c, current_[index(r, c)]);
      }
    }
    packed_valid_ = true;
  }
  // Hard manufacturing faults: stuck cells override every write at any
  // supply voltage (soft pseudo-read flips are applied afterwards).
  // Charged by the callers (write/write_back own the writeback counters).
  // NOLINT(cim-counter-charge)
  void apply_stuck_faults() {
    if (!model_ || model_->params().stuck_cell_rate <= 0.0) return;
    for (std::size_t w = 0; w < weight_count(); ++w) {
      std::uint8_t value = current_[w];
      for (std::uint32_t b = 0; b < bits_; ++b) {
        const std::uint64_t id = cell_id(w, b);
        if (!model_->is_stuck(id)) continue;
        const bool preferred = model_->traits(id).preferred_bit;
        value = static_cast<std::uint8_t>(
            (value & ~(1U << b)) | (static_cast<unsigned>(preferred) << b));
      }
      current_[w] = value;
    }
  }

  std::vector<std::uint8_t> golden_;
  std::vector<std::uint8_t> current_;
  BitPlaneMatrix packed_;
  bool packed_valid_ = false;
  std::vector<const std::uint64_t*> in_ptrs_;
  std::vector<const std::uint64_t*> plane_ptrs_;
};

class BitLevelStorage final : public StorageBase {
 public:
  BitLevelStorage(std::uint32_t rows, std::uint32_t cols,
                  const noise::SramCellModel* model, std::uint64_t cell_base,
                  std::uint32_t weight_bits, PseudoReadPolicy policy)
      : StorageBase(rows, cols, model, cell_base, weight_bits),
        policy_(policy),
        tree_(rows) {
    const std::size_t n_cells = weight_count() * bits_;
    stored_.assign(n_cells, 0);
    golden_bits_.assign(n_cells, 0);
    touched_.assign(n_cells, 0);
  }

  // Initial golden-image load happens before the annealing run starts;
  // the paper's write-energy accounting begins at the first write_back.
  // NOLINT(cim-counter-charge)
  void write(std::span<const std::uint8_t> golden) override {
    CIM_REQUIRE(golden.size() == weight_count(),
                "weight image size mismatch");
    validate_range(golden);
    for (std::size_t w = 0; w < weight_count(); ++w) {
      for (std::uint32_t b = 0; b < bits_; ++b) {
        const std::uint8_t bit = (golden[w] >> b) & 1U;
        golden_bits_[w * bits_ + b] = bit;
        stored_[w * bits_ + b] = bit;
      }
    }
    std::fill(touched_.begin(), touched_.end(), 0);
    packed_valid_ = false;
    apply_stuck_faults();
  }

  void write_back(const noise::SchedulePhase& phase) override {
    CIM_ASSERT_MSG(!stored_.empty(), "write_back before write");
    stored_ = golden_bits_;
    std::fill(touched_.begin(), touched_.end(), 0);
    packed_valid_ = false;
    phase_ = phase;
    ++counters_.writeback_events;
    counters_.writeback_bits += stored_.size();
    apply_stuck_faults();
    if (!model_ || phase.noisy_lsbs == 0) return;
    if (policy_ == PseudoReadPolicy::kSettleAtWriteBack) {
      const std::uint32_t noisy = std::min(phase.noisy_lsbs, bits_);
      for (std::size_t w = 0; w < weight_count(); ++w) {
        for (std::uint32_t b = 0; b < noisy; ++b) {
          corrupt_cell(w, b);
        }
      }
    }
  }

  std::int64_t mac(ColIndex col_idx,
                   std::span<const std::uint8_t> input) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    CIM_ASSERT(input.size() == rows_);
    const bool lazy_noise = model_ &&
                            policy_ == PseudoReadPolicy::kFlipOnAccess &&
                            phase_.noisy_lsbs > 0;
    const std::uint32_t noisy =
        lazy_noise ? std::min(phase_.noisy_lsbs, bits_) : 0;

    // Assemble bit-plane NOR products; every access is a pseudo-read of the
    // addressed cells.
    planes_.assign(static_cast<std::size_t>(bits_) * rows_, 0);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      const std::size_t w = index(r, col);
      for (std::uint32_t b = 0; b < bits_; ++b) {
        const std::size_t cell = w * bits_ + b;
        if (b < noisy && !touched_[cell]) {
          corrupt_cell(w, b);
          touched_[cell] = 1;
        }
        // 14T cell multiply: input NOR-combined with the stored bit acts
        // as a 1-bit AND of input and weight-bit (active-low NOR logic).
        planes_[static_cast<std::size_t>(b) * rows_ + r] =
            static_cast<std::uint8_t>(input[r] & stored_[cell]);
      }
    }
    const std::uint64_t value = tree_.shift_and_add(planes_, bits_);
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return static_cast<std::int64_t>(value);
  }

  std::int64_t mac_sparse(
      ColIndex col_idx,
      std::span<const std::uint32_t> active_rows) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    const bool lazy_noise = model_ &&
                            policy_ == PseudoReadPolicy::kFlipOnAccess &&
                            phase_.noisy_lsbs > 0;
    if (lazy_noise) {
      // Every MAC pseudo-reads the whole addressed column: cells of
      // inactive rows corrupt too, in the same row-major order as the
      // dense path.
      const std::uint32_t noisy = std::min(phase_.noisy_lsbs, bits_);
      for (std::uint32_t r = 0; r < rows_; ++r) {
        const std::size_t w = index(r, col);
        for (std::uint32_t b = 0; b < noisy; ++b) {
          const std::size_t cell = w * bits_ + b;
          if (!touched_[cell]) {
            corrupt_cell(w, b);
            touched_[cell] = 1;
          }
        }
      }
    }
    // Per-plane product counts over the set rows only; the tree model
    // still charges the full-fan-in reduction (inactive rows feed zero
    // products, not zero hardware).
    plane_sums_.assign(bits_, 0);
    for (const std::uint32_t r : active_rows) {
      CIM_ASSERT(r < rows_);
      const std::size_t w = index(r, col);
      for (std::uint32_t b = 0; b < bits_; ++b) {
        plane_sums_[b] += stored_[w * bits_ + b];
      }
    }
    const std::uint64_t value = tree_.shift_and_add_sparse(plane_sums_);
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return static_cast<std::int64_t>(value);
  }

  std::int64_t mac_packed(ColIndex col_idx,
                          std::span<const std::uint64_t> input) override {
    const std::uint32_t col = col_idx.get();
    CIM_ASSERT(col < cols_);
    CIM_REQUIRE(input.size() == packed_words(rows_),
                "packed MAC input word count does not match the window's "
                "packed row count");
    const bool lazy_noise = model_ &&
                            policy_ == PseudoReadPolicy::kFlipOnAccess &&
                            phase_.noisy_lsbs > 0;
    if (lazy_noise) {
      // Identical whole-column lazy corruption as the scalar paths, in
      // the same row-major order — the error pattern (and flip counter)
      // must not depend on the kernel.
      const std::uint32_t noisy = std::min(phase_.noisy_lsbs, bits_);
      for (std::uint32_t r = 0; r < rows_; ++r) {
        const std::size_t w = index(r, col);
        for (std::uint32_t b = 0; b < noisy; ++b) {
          const std::size_t cell = w * bits_ + b;
          if (!touched_[cell]) {
            corrupt_cell(w, b);
            touched_[cell] = 1;
          }
        }
      }
    }
    ensure_packed();
    // Popcount per bit-plane, then the same shift_and_add_sparse reduction
    // as the sparse kernel — the tree charges its full-fan-in ops either
    // way, so the reduction counters match the oracle bit for bit.
    plane_sums_.assign(bits_, 0);
    packed_.plane_sums(col, input, plane_sums_);
    const std::uint64_t value = tree_.shift_and_add_sparse(plane_sums_);
    ++counters_.macs;
    counters_.mac_bit_reads += static_cast<std::uint64_t>(rows_) * bits_;
    return static_cast<std::int64_t>(value);
  }

  // Test/debug observability peek, not a modelled wordline access.
  // NOLINT(cim-counter-charge)
  std::uint8_t weight(RowIndex row, ColIndex col) const override {
    const std::size_t w = index(row.get(), col.get());
    std::uint8_t value = 0;
    for (std::uint32_t b = 0; b < bits_; ++b) {
      value = static_cast<std::uint8_t>(value | (stored_[w * bits_ + b] << b));
    }
    return value;
  }

  const AdderTree& adder_tree() const { return tree_; }

 private:
  // Charged by the callers (write/write_back own the writeback counters).
  // NOLINT(cim-counter-charge)
  void apply_stuck_faults() {
    if (!model_ || model_->params().stuck_cell_rate <= 0.0) return;
    for (std::size_t w = 0; w < weight_count(); ++w) {
      for (std::uint32_t b = 0; b < bits_; ++b) {
        const std::uint64_t id = cell_id(w, b);
        if (!model_->is_stuck(id)) continue;
        stored_[w * bits_ + b] =
            model_->traits(id).preferred_bit ? 1 : 0;
      }
    }
  }

  void corrupt_cell(std::size_t w, std::uint32_t b) {
    const std::size_t cell = w * bits_ + b;
    const bool bit = stored_[cell] != 0;
    const bool settled =
        model_->settled_value(cell_id(w, b), phase_.epoch, phase_.vdd, bit);
    if (settled != bit) {
      stored_[cell] = settled ? 1 : 0;
      ++counters_.pseudo_read_flips;
      packed_valid_ = false;
    }
  }

  // Rebuilds the bit-plane mirror from the (possibly corrupted) cell
  // array. Pure host-side re-layout — the physical reads are charged by
  // the MAC entry points, so the sweep over stored_ is deliberately
  // uncharged. NOLINT(cim-counter-charge)
  void ensure_packed() {
    if (packed_valid_) return;
    packed_.reset(rows_, cols_, bits_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      for (std::uint32_t c = 0; c < cols_; ++c) {
        const std::size_t w = index(r, c);
        std::uint8_t value = 0;
        for (std::uint32_t b = 0; b < bits_; ++b) {
          value = static_cast<std::uint8_t>(value |
                                            (stored_[w * bits_ + b] << b));
        }
        packed_.set_weight(r, c, value);
      }
    }
    packed_valid_ = true;
  }

  PseudoReadPolicy policy_;
  AdderTree tree_;
  noise::SchedulePhase phase_;
  std::vector<std::uint8_t> stored_;
  std::vector<std::uint8_t> golden_bits_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint8_t> planes_;
  std::vector<std::uint32_t> plane_sums_;
  BitPlaneMatrix packed_;
  bool packed_valid_ = false;
};

}  // namespace

std::unique_ptr<WeightStorage> make_fast_storage(
    std::uint32_t rows, std::uint32_t cols,
    const noise::SramCellModel* model, std::uint64_t cell_base,
    std::uint32_t weight_bits) {
  return std::make_unique<FastStorage>(rows, cols, model, cell_base,
                                       weight_bits);
}

std::unique_ptr<WeightStorage> make_bit_level_storage(
    std::uint32_t rows, std::uint32_t cols,
    const noise::SramCellModel* model, std::uint64_t cell_base,
    std::uint32_t weight_bits, PseudoReadPolicy policy) {
  return std::make_unique<BitLevelStorage>(rows, cols, model, cell_base,
                                           weight_bits, policy);
}

}  // namespace cim::hw
