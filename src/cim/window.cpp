#include "cim/window.hpp"

namespace cim::hw {

WindowBuilder::WindowBuilder(WindowShape shape) : shape_(shape) {
  CIM_REQUIRE(shape_.p >= 1, "window needs at least one member");
  own_.assign(static_cast<std::size_t>(shape_.p) * shape_.p, 0);
  prev_.assign(static_cast<std::size_t>(shape_.p_prev) * shape_.p, 0);
  next_.assign(static_cast<std::size_t>(shape_.p_next) * shape_.p, 0);
}

void WindowBuilder::set_own_distance(std::uint32_t a, std::uint32_t b,
                                     std::uint8_t w) {
  CIM_ASSERT(a < shape_.p && b < shape_.p);
  own_[static_cast<std::size_t>(a) * shape_.p + b] = w;
  own_[static_cast<std::size_t>(b) * shape_.p + a] = w;
}

void WindowBuilder::set_prev_distance(std::uint32_t j, std::uint32_t k,
                                      std::uint8_t w) {
  CIM_ASSERT(j < shape_.p_prev && k < shape_.p);
  prev_[static_cast<std::size_t>(j) * shape_.p + k] = w;
}

void WindowBuilder::set_next_distance(std::uint32_t j, std::uint32_t k,
                                      std::uint8_t w) {
  CIM_ASSERT(j < shape_.p_next && k < shape_.p);
  next_[static_cast<std::size_t>(j) * shape_.p + k] = w;
}

std::vector<std::uint8_t> WindowBuilder::build() const {
  const std::uint32_t p = shape_.p;
  std::vector<std::uint8_t> image(shape_.weights(), 0);
  const auto at = [&](RowIndex r, ColIndex c) -> std::uint8_t& {
    return image[static_cast<std::size_t>(r.get()) * shape_.cols() + c.get()];
  };

  // Own-spin couplings: member rk at order ri couples with member sk at
  // order si when |ri − si| == 1 (orders inside the cluster are a path;
  // the cyclic wrap happens through the neighbour clusters).
  for (std::uint32_t ri = 0; ri < p; ++ri) {
    for (std::uint32_t rk = 0; rk < p; ++rk) {
      for (std::uint32_t si = 0; si < p; ++si) {
        if (si + 1 != ri && ri + 1 != si) continue;
        for (std::uint32_t sk = 0; sk < p; ++sk) {
          if (sk == rk) continue;  // a member cannot neighbour itself
          at(own_row(ri, rk), col(si, sk)) =
              own_[static_cast<std::size_t>(rk) * p + sk];
        }
      }
    }
  }
  // Predecessor boundary couples with own order 0.
  for (std::uint32_t j = 0; j < shape_.p_prev; ++j) {
    for (std::uint32_t sk = 0; sk < p; ++sk) {
      at(prev_row(j), col(0, sk)) =
          prev_[static_cast<std::size_t>(j) * p + sk];
    }
  }
  // Successor boundary couples with own order p−1.
  for (std::uint32_t j = 0; j < shape_.p_next; ++j) {
    for (std::uint32_t sk = 0; sk < p; ++sk) {
      at(next_row(j), col(p - 1, sk)) =
          next_[static_cast<std::size_t>(j) * p + sk];
    }
  }
  return image;
}

}  // namespace cim::hw
