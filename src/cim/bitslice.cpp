#include "cim/bitslice.hpp"

#include "util/simd.hpp"

namespace cim::hw {

void BitPlaneMatrix::reset(std::uint32_t rows, std::uint32_t cols,
                           std::uint32_t bits) {
  CIM_REQUIRE(rows >= 1 && cols >= 1,
              "bit-plane matrix needs a non-empty window (rows and cols >= 1)");
  CIM_REQUIRE(bits >= 1 && bits <= 8,
              "bit-plane matrix supports 1..8 weight bits");
  rows_ = rows;
  cols_ = cols;
  bits_ = bits;
  words_ = packed_words(rows);
  planes_.assign(static_cast<std::size_t>(cols_) * bits_ * words_, 0);
}

void BitPlaneMatrix::set_weight(std::uint32_t row, std::uint32_t col,
                                std::uint8_t value) {
  CIM_ASSERT(row < rows_ && col < cols_);
  const std::size_t col_base =
      static_cast<std::size_t>(col) * bits_ * words_;
  const std::size_t word = row >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (row & 63U);
  for (std::uint32_t b = 0; b < bits_; ++b) {
    std::uint64_t& plane_word = planes_[col_base + b * words_ + word];
    if ((value >> b) & 1U) {
      plane_word |= mask;
    } else {
      plane_word &= ~mask;
    }
  }
}

std::uint64_t BitPlaneMatrix::mac(std::uint32_t col,
                                  std::span<const std::uint64_t> input) const {
  CIM_REQUIRE(input.size() == words_,
              "packed MAC input word count does not match the window's "
              "packed row count");
  return util::simd::mac_bitplanes(input.data(),
                                   column_planes(col).data(), words_, bits_);
}

void BitPlaneMatrix::plane_sums(std::uint32_t col,
                                std::span<const std::uint64_t> input,
                                std::span<std::uint32_t> out) const {
  CIM_REQUIRE(input.size() == words_,
              "packed MAC input word count does not match the window's "
              "packed row count");
  CIM_REQUIRE(out.size() == bits_,
              "plane-sum output span must have one entry per weight bit");
  util::simd::plane_popcounts(input.data(), column_planes(col).data(), words_,
                              bits_, out.data());
}

}  // namespace cim::hw
