// Digital CIM adder tree (§II.B, Fig. 5(a)).
//
// A digital CIM column does not accumulate analog current: each 14T cell's
// NOR gate produces a 1-bit product (input ∧ weight-bit) and a binary adder
// tree sums the products of one column section. Eight bit-planes are then
// combined by shift-and-add. Because the tree is a digital reduction, it
// can sum *a section* of a column — the property that makes the paper's
// compact window relocation legal where analog CIM would sum the whole
// column and produce wrong energies.
//
// This model is functionally exact and also reports the adder-op count and
// tree depth used by the PPA energy/latency models.
#pragma once

#include <cstdint>
#include <span>

namespace cim::hw {

class AdderTree {
 public:
  /// A tree sized for `fan_in` one-bit products.
  explicit AdderTree(std::uint32_t fan_in);

  std::uint32_t fan_in() const { return fan_in_; }
  /// Tree depth in adder stages (ceil(log2(fan_in))).
  std::uint32_t depth() const { return depth_; }
  /// Total 1-bit full-adder equivalents in one reduction.
  std::uint64_t adders_per_reduction() const { return adders_; }

  /// Sums one bit-plane of products. `products` must have fan_in entries,
  /// each 0 or 1. Counts one reduction.
  std::uint32_t reduce(std::span<const std::uint8_t> products);

  /// Full multi-bit MAC: for each weight bit-plane b (LSB first),
  /// reduce(products of plane b) << b, accumulated. `planes` is
  /// bit-major: planes[b * fan_in + r]. Counts `bits` reductions plus the
  /// shift-and-add.
  std::uint64_t shift_and_add(std::span<const std::uint8_t> planes,
                              std::uint32_t bits);

  /// Sparse-input shift-and-add: `plane_sums[b]` is the pre-summed product
  /// count of bit-plane b over the *set* input rows only. The hardware
  /// tree still reduces the full fan-in every cycle (the inactive rows
  /// contribute zero products, not zero work), so this charges exactly the
  /// counters of a dense shift_and_add over plane_sums.size() planes.
  std::uint64_t shift_and_add_sparse(std::span<const std::uint32_t> plane_sums);

  std::uint64_t reductions() const { return reductions_; }
  std::uint64_t total_adder_ops() const { return adder_ops_; }
  void reset_counters();

 private:
  std::uint32_t fan_in_ = 1;
  std::uint32_t depth_ = 0;
  std::uint64_t adders_ = 0;
  std::uint64_t reductions_ = 0;
  std::uint64_t adder_ops_ = 0;
};

}  // namespace cim::hw
