// Compact weight-window geometry (§III.B, Fig. 3(c)).
//
// After clustering, a cluster's spins only interact with spins of the same
// cluster and the boundary spins of the two ring-adjacent clusters, so the
// dense (p·N)×(p·N) clustered matrix holds one valid (p²+2p)×p² block per
// cluster. The compact mapping stores exactly those blocks — O(N) memory.
//
// Row/column semantics for a window serving a cluster with `p` members,
// whose ring predecessor has `p_prev` and successor `p_next` members:
//
//   columns s ∈ [0, p²):        own spin (order s/p, member s%p) — one MAC
//                               column yields that spin's local energy;
//   rows r ∈ [0, p²):           own spins, same (order, member) encoding;
//   rows r ∈ [p², p²+p_prev):   predecessor boundary members (their spins
//                               at the predecessor's *last* order);
//   rows r ∈ [p²+p_prev, …+p_next): successor boundary members (spins at
//                               the successor's *first* order).
//
// A weight is non-zero only between spins at adjacent visiting orders.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace cim::hw {

using util::ColIndex;
using util::RowIndex;

struct WindowShape {
  std::uint32_t p = 0;       ///< own member count (cluster size)
  std::uint32_t p_prev = 0;  ///< predecessor boundary width
  std::uint32_t p_next = 0;  ///< successor boundary width

  std::uint32_t own_rows() const { return p * p; }
  std::uint32_t rows() const { return p * p + p_prev + p_next; }
  std::uint32_t cols() const { return p * p; }
  std::size_t weights() const {
    return static_cast<std::size_t>(rows()) * cols();
  }

  /// The paper's hardware window (both neighbours provisioned at p):
  /// (p²+2p) × p².
  static WindowShape hardware(std::uint32_t p_max) {
    return {p_max, p_max, p_max};
  }
};

/// Builds the golden (noise-free) weight image of a window from quantised
/// member distances.
class WindowBuilder {
 public:
  explicit WindowBuilder(WindowShape shape);

  const WindowShape& shape() const { return shape_; }

  /// Distance between own members a and b (8-bit quantised).
  void set_own_distance(std::uint32_t a, std::uint32_t b, std::uint8_t w);
  /// Distance from predecessor boundary member j to own member k.
  void set_prev_distance(std::uint32_t j, std::uint32_t k, std::uint8_t w);
  /// Distance from successor boundary member j to own member k.
  void set_next_distance(std::uint32_t j, std::uint32_t k, std::uint8_t w);

  /// Finalises the row-major rows()×cols() weight image: own-spin weights
  /// appear wherever visiting orders are adjacent; boundary weights appear
  /// in the first / last order columns.
  std::vector<std::uint8_t> build() const;

  /// Row/column index helpers (match the class comment). The tagged types
  /// keep the boundary-row address space from leaking into column MACs.
  RowIndex own_row(std::uint32_t order, std::uint32_t member) const {
    CIM_ASSERT(order < shape_.p && member < shape_.p);
    return RowIndex(order * shape_.p + member);
  }
  RowIndex prev_row(std::uint32_t j) const {
    CIM_ASSERT(j < shape_.p_prev);
    return RowIndex(shape_.own_rows() + j);
  }
  RowIndex next_row(std::uint32_t j) const {
    CIM_ASSERT(j < shape_.p_next);
    return RowIndex(shape_.own_rows() + shape_.p_prev + j);
  }
  ColIndex col(std::uint32_t order, std::uint32_t member) const {
    CIM_ASSERT(order < shape_.p && member < shape_.p);
    return ColIndex(order * shape_.p + member);
  }

 private:
  WindowShape shape_;
  std::vector<std::uint8_t> own_;    // p×p member distances
  std::vector<std::uint8_t> prev_;   // p_prev×p
  std::vector<std::uint8_t> next_;   // p_next×p
};

}  // namespace cim::hw
