#include "cim/activity.hpp"

namespace cim::hw {

namespace telemetry = util::telemetry;

void publish_storage(const StorageCounters& counters,
                     telemetry::Registry& registry) {
  registry.counter("cim.storage.macs").add(counters.macs);
  registry.counter("cim.storage.mac_bit_reads").add(counters.mac_bit_reads);
  registry.counter("cim.storage.writeback_events")
      .add(counters.writeback_events);
  registry.counter("cim.storage.writeback_bits").add(counters.writeback_bits);
  registry.counter("cim.storage.pseudo_read_flips")
      .add(counters.pseudo_read_flips);
}

void publish_dataflow(const DataflowTracker& dataflow,
                      telemetry::Registry& registry) {
  registry.counter("cim.dataflow.input_shift_events")
      .add(dataflow.input_shift_events());
  registry.counter("cim.dataflow.input_bits_shifted")
      .add(dataflow.input_bits_shifted());
  registry.counter("cim.dataflow.downstream_transfers")
      .add(dataflow.downstream_transfers());
  registry.counter("cim.dataflow.upstream_transfers")
      .add(dataflow.upstream_transfers());
  registry.counter("cim.dataflow.third_phase_transfers")
      .add(dataflow.third_phase_transfers());
  registry.counter("cim.dataflow.edge_bits_transferred")
      .add(dataflow.edge_bits_transferred());
}

void publish_activity(const HardwareActivity& activity,
                      telemetry::Registry& registry) {
  publish_storage(activity.storage, registry);
  publish_dataflow(activity.dataflow, registry);
  registry.counter("cim.update_cycles").add(activity.update_cycles);
  registry.counter("cim.writeback_cycles").add(activity.writeback_cycles);
  registry.counter("cim.swap_attempts").add(activity.swap_attempts);
}

}  // namespace cim::hw
