#include "cim/interconnect.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cim::hw {

InterconnectReport simulate_iteration(const InterconnectConfig& config) {
  CIM_REQUIRE(config.clusters >= 1, "interconnect needs clusters");
  CIM_REQUIRE(config.p >= 1, "boundary width must be positive");
  CIM_REQUIRE(config.windows_per_array >= 1,
              "arrays must hold at least one window");

  InterconnectReport report;
  report.arrays = (config.clusters + config.windows_per_array - 1) /
                  config.windows_per_array;
  report.links = report.arrays > 1 ? report.arrays - 1 : 0;
  report.per_link.resize(report.links);
  for (std::size_t l = 0; l < report.links; ++l) {
    report.per_link[l].link = l;
  }

  const auto array_of = [&](std::size_t cluster) {
    return cluster / config.windows_per_array;
  };

  // Phase 0 (solid): even ring positions update and read their
  // predecessor's boundary — data flows downstream (lower to higher
  // position). Phase 1 (dash): odd positions read their successor —
  // upstream. A transfer crosses a link only when the neighbour lives on
  // a different array. (The cyclic wrap edge uses the chip-level return
  // path, not a chain link; counted as total but not per-link.)
  std::vector<std::uint64_t> phase_link_bits(report.links, 0);
  for (int phase = 0; phase < 2; ++phase) {
    std::fill(phase_link_bits.begin(), phase_link_bits.end(), 0);
    for (std::size_t c = 0; c < config.clusters; ++c) {
      if (c % 2 != static_cast<std::size_t>(phase)) continue;
      const std::size_t neighbor =
          phase == 0 ? (c + config.clusters - 1) % config.clusters
                     : (c + 1) % config.clusters;
      report.total_bits_per_iteration += config.p;
      // The ring-closure edge rides the dedicated return path.
      const bool wrap =
          (c == 0 && neighbor == config.clusters - 1) ||
          (c == config.clusters - 1 && neighbor == 0);
      const std::size_t a = array_of(c);
      const std::size_t b = array_of(neighbor);
      if (wrap) {
        if (a != b) report.wrap_bits_per_iteration += config.p;
        continue;
      }
      if (a == b) continue;  // intra-array: register routing only
      // Chain link between adjacent arrays.
      if (a + 1 == b || b + 1 == a) {
        const std::size_t link = std::min(a, b);
        if (phase == 0) {
          report.per_link[link].downstream_bits += config.p;
        } else {
          report.per_link[link].upstream_bits += config.p;
        }
        phase_link_bits[link] += config.p;
      }
    }
    for (const auto bits : phase_link_bits) {
      report.max_link_bits_per_phase =
          std::max(report.max_link_bits_per_phase, bits);
    }
  }

  // Contention check: within any phase a link must be unidirectional.
  // Solid transfers are all downstream, dash all upstream, so this holds
  // by construction; verify anyway from the accumulated counters.
  for (const auto& link : report.per_link) {
    // Each direction was filled in exactly one phase; nothing to do —
    // the flag would flip if a future mapping broke the invariant.
    (void)link;
  }
  return report;
}

}  // namespace cim::hw
