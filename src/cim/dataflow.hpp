// Intra-/inter-array dataflow accounting (§III.B, Fig. 5(e)).
//
// The recurrent HNN update keeps spin state in the input registers: inside
// an array the register is shifted up to realign with the relocated
// windows when alternating between odd ("solid") and even ("dash") cluster
// updates; between arrays only the p boundary spin bits cross the edge —
// downstream for solid updates, upstream for dash updates. This tracker
// counts those events so the PPA model can charge them, and provides the
// check used in tests that nothing but edge data ever moves between
// arrays.
#pragma once

#include <cstdint>

namespace cim::hw {

enum class UpdateParity : std::uint8_t {
  kSolid = 0,  ///< odd cluster columns
  kDash = 1,   ///< even cluster columns
  /// The extra chromatic phase an odd-length ring needs for its last
  /// cluster (§III.A): neither a solid nor a dash column, it updates alone
  /// in a third cycle group and its boundary traffic is tallied
  /// separately so the solid/dash direction split stays faithful.
  kThird = 2,
};

class DataflowTracker {
 public:
  /// Register realignment when the update parity toggles.
  void record_input_shift(std::uint32_t bits_shifted);

  /// Boundary transfer of `p` bits between ring-adjacent clusters.
  /// Direction follows the parity: solid → downstream, dash → upstream,
  /// third-phase → its own tally.
  void record_edge_transfer(UpdateParity parity, std::uint32_t p_bits);

  std::uint64_t input_shift_events() const { return shift_events_; }
  std::uint64_t input_bits_shifted() const { return bits_shifted_; }
  std::uint64_t downstream_transfers() const { return downstream_; }
  std::uint64_t upstream_transfers() const { return upstream_; }
  std::uint64_t third_phase_transfers() const { return third_phase_; }
  std::uint64_t edge_bits_transferred() const { return edge_bits_; }

  DataflowTracker& operator+=(const DataflowTracker& other);

 private:
  std::uint64_t shift_events_ = 0;
  std::uint64_t bits_shifted_ = 0;
  std::uint64_t downstream_ = 0;
  std::uint64_t upstream_ = 0;
  std::uint64_t third_phase_ = 0;
  std::uint64_t edge_bits_ = 0;
};

}  // namespace cim::hw
