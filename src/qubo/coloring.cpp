#include "qubo/coloring.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace cim::qubo {

std::uint32_t ColoringInstance::max_degree() const {
  std::vector<std::uint32_t> degree(vertices, 0);
  for (const auto& [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  std::uint32_t top = 0;
  for (const std::uint32_t d : degree) top = std::max(top, d);
  return top;
}

ColoringInstance make_coloring(
    std::string name, std::size_t vertices, std::uint32_t colors,
    std::vector<std::pair<ising::SpinIndex, ising::SpinIndex>> edges) {
  CIM_REQUIRE(vertices >= 1, "coloring: need at least one vertex");
  CIM_REQUIRE(colors >= 2, "coloring: need at least two colors");
  std::set<std::pair<ising::SpinIndex, ising::SpinIndex>> seen;
  for (auto& [a, b] : edges) {
    CIM_REQUIRE(a < vertices && b < vertices,
                "coloring: edge endpoint out of range");
    CIM_REQUIRE(a != b, "coloring: self-loop");
    if (a > b) std::swap(a, b);
    CIM_REQUIRE(seen.insert({a, b}).second, "coloring: duplicate edge");
  }
  return ColoringInstance{std::move(name), vertices, colors,
                          std::move(edges)};
}

ColoringInstance ring_coloring(std::size_t n, std::uint32_t colors) {
  CIM_REQUIRE(n >= 3, "ring coloring: need at least three vertices");
  std::vector<std::pair<ising::SpinIndex, ising::SpinIndex>> edges;
  edges.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    edges.emplace_back(static_cast<ising::SpinIndex>(v),
                       static_cast<ising::SpinIndex>((v + 1) % n));
  }
  return make_coloring("ring" + std::to_string(n), n, colors,
                       std::move(edges));
}

ColoringInstance petersen_coloring(std::uint32_t colors) {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes v -> v+5.
  std::vector<std::pair<ising::SpinIndex, ising::SpinIndex>> edges;
  for (ising::SpinIndex v = 0; v < 5; ++v) {
    edges.emplace_back(v, (v + 1) % 5);
    edges.emplace_back(5 + v, 5 + (v + 2) % 5);
    edges.emplace_back(v, 5 + v);
  }
  return make_coloring("petersen", 10, colors, std::move(edges));
}

ColoringEncoding encode_coloring(const ColoringInstance& instance,
                                 long long one_hot_penalty,
                                 long long conflict_penalty) {
  CIM_REQUIRE(conflict_penalty >= 1,
              "coloring: conflict penalty must be positive");
  if (one_hot_penalty == 0) {
    one_hot_penalty = conflict_penalty * instance.max_degree() + 1;
  }
  CIM_REQUIRE(one_hot_penalty >= 1,
              "coloring: one-hot penalty must be positive");

  const std::size_t n = instance.vertices * instance.colors;
  ising::Qubo qubo(n);
  ColoringEncoding encoding{
      ising::GenericModel(instance.name, n), instance.vertices,
      instance.colors, one_hot_penalty, conflict_penalty};
  const double a = static_cast<double>(one_hot_penalty);
  const double b = static_cast<double>(conflict_penalty);

  // A(1 − Σ_c x)² = A − 2AΣx + AΣx² + 2AΣ_{c<c'} x x'; the constant A
  // per vertex is carried as the model offset below.
  for (std::size_t v = 0; v < instance.vertices; ++v) {
    for (std::uint32_t c = 0; c < instance.colors; ++c) {
      const auto i = static_cast<ising::SpinIndex>(encoding.var(v, c));
      qubo.add(i, i, -a);
      for (std::uint32_t d = c + 1; d < instance.colors; ++d) {
        qubo.add(i, static_cast<ising::SpinIndex>(encoding.var(v, d)),
                 2.0 * a);
      }
    }
  }
  for (const auto& [u, v] : instance.edges) {
    for (std::uint32_t c = 0; c < instance.colors; ++c) {
      qubo.add(static_cast<ising::SpinIndex>(encoding.var(u, c)),
               static_cast<ising::SpinIndex>(encoding.var(v, c)), b);
    }
  }

  encoding.model = ising::GenericModel::from_qubo(instance.name, qubo);
  encoding.model.add_offset(a * static_cast<double>(instance.vertices));
  return encoding;
}

ColoringEncoding::Decoded ColoringEncoding::decode(
    const ColoringInstance& instance,
    std::span<const ising::Spin> spins) const {
  CIM_REQUIRE(spins.size() == model.size(),
              "coloring decode: spin count mismatch");
  Decoded decoded;
  decoded.color.assign(vertices, -1);
  for (std::size_t v = 0; v < vertices; ++v) {
    int chosen = -1;
    std::uint32_t set_count = 0;
    for (std::uint32_t c = 0; c < colors; ++c) {
      if (spins[var(v, c)] > 0) {
        ++set_count;
        chosen = static_cast<int>(c);
      }
    }
    if (set_count == 1) {
      decoded.color[v] = chosen;
    } else {
      ++decoded.one_hot_violations;
    }
  }
  for (const auto& [u, v] : instance.edges) {
    if (decoded.color[u] >= 0 && decoded.color[u] == decoded.color[v]) {
      ++decoded.conflicts;
    }
  }
  decoded.feasible =
      decoded.one_hot_violations == 0 && decoded.conflicts == 0;
  return decoded;
}

namespace {

bool colorable_rec(const ColoringInstance& instance,
                   const std::vector<std::vector<ising::SpinIndex>>& adj,
                   std::vector<int>& color, std::size_t v) {
  if (v == instance.vertices) return true;
  for (std::uint32_t c = 0; c < instance.colors; ++c) {
    bool clash = false;
    for (const ising::SpinIndex u : adj[v]) {
      if (u < v && color[u] == static_cast<int>(c)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    color[v] = static_cast<int>(c);
    if (colorable_rec(instance, adj, color, v + 1)) return true;
    color[v] = -1;
  }
  return false;
}

}  // namespace

bool brute_force_colorable(const ColoringInstance& instance) {
  std::vector<std::vector<ising::SpinIndex>> adj(instance.vertices);
  for (const auto& [a, b] : instance.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> color(instance.vertices, -1);
  return colorable_rec(instance, adj, color, 0);
}

}  // namespace cim::qubo
