// Strict loaders for the two on-disk QUBO/Ising instance formats
// (ROADMAP item 3): GSet weighted graphs and sparse J/h coefficient
// files. Both parsers follow the util/json error discipline — every
// malformed, truncated, duplicated or overflowing input raises
// cim::ConfigError with the offending line number; nothing is silently
// repaired or skipped — and both have writers whose output parses back
// to an identical instance (round-trip identity, fuzz-tested).
//
// GSet (the Max-Cut benchmark family's format; 1-based indices):
//
//   <n_vertices> <n_edges>
//   <a> <b> <weight>          one line per edge, a != b, int32 weight
//
// Sparse J/h (0-based indices; '#' starts a comment, "offset" optional):
//
//   <n_spins> <n_terms>
//   offset <value>            at most once
//   <i> <i> <h_i>             diagonal term: external field on spin i
//   <i> <j> <J_ij>            off-diagonal term: coupling (i != j)
//
// under E(σ) = offset − Σ J_ij σ_i σ_j − Σ h_i σ_i (ising/generic.hpp).
// Each unordered pair and each field index may appear at most once.
#pragma once

#include <string>

#include "ising/generic.hpp"
#include "ising/maxcut.hpp"

namespace cim::qubo {

/// Parses GSet text. `name` labels the resulting problem.
ising::MaxCutProblem parse_gset(const std::string& text,
                                const std::string& name = "gset");

/// Canonical GSet text; parse_gset(write_gset(p)) is edge-identical.
std::string write_gset(const ising::MaxCutProblem& problem);

/// Parses sparse J/h text into a GenericModel.
ising::GenericModel parse_jh(const std::string& text,
                             const std::string& name = "jh");

/// Canonical J/h text (fields first, couplings in (a, b) order);
/// parse_jh(write_jh(m)) reproduces couplings, fields and offset.
std::string write_jh(const ising::GenericModel& model);

/// File wrappers; throw cim::Error when the file cannot be read. The
/// instance name defaults to the file path.
ising::MaxCutProblem load_gset_file(const std::string& path);
ising::GenericModel load_jh_file(const std::string& path);

}  // namespace cim::qubo
