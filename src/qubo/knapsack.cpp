#include "qubo/knapsack.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cim::qubo {

KnapsackInstance make_knapsack(std::string name,
                               std::vector<long long> values,
                               std::vector<long long> weights,
                               long long capacity) {
  CIM_REQUIRE(!values.empty(), "knapsack: need at least one item");
  CIM_REQUIRE(values.size() == weights.size(),
              "knapsack: values/weights size mismatch");
  CIM_REQUIRE(capacity >= 1, "knapsack: capacity must be positive");
  for (const long long v : values) {
    CIM_REQUIRE(v >= 1, "knapsack: item values must be positive");
  }
  for (const long long w : weights) {
    CIM_REQUIRE(w >= 1, "knapsack: item weights must be positive");
  }
  return KnapsackInstance{std::move(name), std::move(values),
                          std::move(weights), capacity};
}

KnapsackEncoding encode_knapsack(const KnapsackInstance& instance,
                                 long long penalty) {
  const long long max_value =
      *std::max_element(instance.values.begin(), instance.values.end());
  if (penalty == 0) penalty = max_value + 1;
  CIM_REQUIRE(penalty >= 1, "knapsack: penalty must be positive");

  // Slack digits spanning 0..C: 1, 2, 4, …, C + 1 − 2^{M−1}.
  std::vector<long long> slack_coeff;
  long long covered = 0;  // slack register spans 0..covered
  while (covered < instance.capacity) {
    const long long next =
        std::min(covered + 1, instance.capacity - covered);
    slack_coeff.push_back(next);
    covered += next;
  }

  const std::size_t n = instance.items() + slack_coeff.size();
  KnapsackEncoding encoding{ising::GenericModel(instance.name, n),
                            instance.items(), slack_coeff.size(), penalty,
                            slack_coeff};

  // All n variables enter the penalty square with coefficient g_k (item
  // weight or slack digit): A(Σ g t − C)² expands to diagonal
  // A·g(g − 2C), pairwise 2A·g_k·g_l, constant A·C² (model offset).
  std::vector<long long> g(n, 0);
  for (std::size_t i = 0; i < instance.items(); ++i) {
    g[i] = instance.weights[i];
  }
  for (std::size_t j = 0; j < slack_coeff.size(); ++j) {
    g[instance.items() + j] = slack_coeff[j];
  }

  ising::Qubo qubo(n);
  const double a = static_cast<double>(penalty);
  const double cap = static_cast<double>(instance.capacity);
  for (std::size_t k = 0; k < n; ++k) {
    const double gk = static_cast<double>(g[k]);
    double diag = a * gk * (gk - 2.0 * cap);
    if (k < instance.items()) {
      diag -= static_cast<double>(instance.values[k]);
    }
    qubo.add(static_cast<ising::SpinIndex>(k),
             static_cast<ising::SpinIndex>(k), diag);
    for (std::size_t l = k + 1; l < n; ++l) {
      qubo.add(static_cast<ising::SpinIndex>(k),
               static_cast<ising::SpinIndex>(l),
               2.0 * a * gk * static_cast<double>(g[l]));
    }
  }

  encoding.model = ising::GenericModel::from_qubo(instance.name, qubo);
  encoding.model.add_offset(a * cap * cap);
  return encoding;
}

KnapsackEncoding::Decoded KnapsackEncoding::decode(
    const KnapsackInstance& instance,
    std::span<const ising::Spin> spins) const {
  CIM_REQUIRE(spins.size() == model.size(),
              "knapsack decode: spin count mismatch");
  Decoded decoded;
  decoded.chosen.assign(items, 0);
  for (std::size_t i = 0; i < items; ++i) {
    if (spins[i] > 0) {
      decoded.chosen[i] = 1;
      decoded.value += instance.values[i];
      decoded.weight += instance.weights[i];
    }
  }
  decoded.feasible = decoded.weight <= instance.capacity;
  return decoded;
}

long long brute_force_knapsack(const KnapsackInstance& instance) {
  CIM_REQUIRE(instance.items() <= 24, "brute force knapsack: too many items");
  long long best = 0;
  const std::size_t n = instance.items();
  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    long long value = 0;
    long long weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1U << i)) {
        value += instance.values[i];
        weight += instance.weights[i];
      }
    }
    if (weight <= instance.capacity) best = std::max(best, value);
  }
  return best;
}

}  // namespace cim::qubo
