// Graph k-colouring as a penalty QUBO (new workload family for the
// generic front-end, ROADMAP item 3).
//
// One binary x_{v,c} per (vertex, colour). Two integer penalties:
//
//   one-hot   A · Σ_v (1 − Σ_c x_{v,c})²     every vertex gets 1 colour
//   conflict  B · Σ_{(u,v)∈E} Σ_c x_{u,c} x_{v,c}
//
// With A > B·Δ (Δ = max degree) the global optimum of the encoded model
// is a proper colouring whenever one exists, at energy exactly 0 — the
// encoding carries its constant so feasibility is a crisp integer test.
// All coefficients are integers, so the hardware mapping is exact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ising/generic.hpp"
#include "ising/model.hpp"

namespace cim::qubo {

/// A k-colouring instance: simple undirected graph + colour budget.
/// Construction validates: n >= 1, colors >= 2, endpoints in range, no
/// self-loops, no duplicate edges (ConfigError otherwise).
struct ColoringInstance {
  std::string name;
  std::size_t vertices = 0;
  std::uint32_t colors = 0;
  std::vector<std::pair<ising::SpinIndex, ising::SpinIndex>> edges;

  std::uint32_t max_degree() const;
};

ColoringInstance make_coloring(
    std::string name, std::size_t vertices, std::uint32_t colors,
    std::vector<std::pair<ising::SpinIndex, ising::SpinIndex>> edges);

/// Cycle C_n with k colours (2-colourable iff n even).
ColoringInstance ring_coloring(std::size_t n, std::uint32_t colors);

/// The Petersen graph (10 vertices, 15 edges, chromatic number 3).
ColoringInstance petersen_coloring(std::uint32_t colors);

/// The penalty encoding of an instance plus its decoding bookkeeping.
struct ColoringEncoding {
  ising::GenericModel model;     ///< vertices·colors spins
  std::size_t vertices = 0;
  std::uint32_t colors = 0;
  long long one_hot_penalty = 0;   ///< A
  long long conflict_penalty = 0;  ///< B

  /// Variable index of indicator x_{v,c}.
  std::size_t var(std::size_t v, std::uint32_t c) const {
    return v * colors + c;
  }

  struct Decoded {
    /// Colour per vertex; −1 when the vertex's one-hot row is violated.
    std::vector<int> color;
    std::size_t one_hot_violations = 0;
    std::size_t conflicts = 0;  ///< monochromatic edges (one-hot rows only)
    bool feasible = false;
  };
  Decoded decode(const ColoringInstance& instance,
                 std::span<const ising::Spin> spins) const;
};

/// Builds the encoding. `one_hot_penalty` 0 selects the default
/// B·Δ + 1 (with conflict penalty B); both must end up >= 1.
ColoringEncoding encode_coloring(const ColoringInstance& instance,
                                 long long one_hot_penalty = 0,
                                 long long conflict_penalty = 1);

/// True when a proper colouring with the instance's budget exists.
/// Exhaustive (colors^vertices); vertices·log2(colors) <= ~24.
bool brute_force_colorable(const ColoringInstance& instance);

}  // namespace cim::qubo
