// 0/1 knapsack (the portfolio-selection prototype) as a penalty QUBO.
//
// Items with integer values v_i and weights w_i, capacity C. Binary
// slack digits s_j turn the inequality Σ w x <= C into an equality:
//
//   minimise  −Σ_i v_i x_i + A·(Σ_i w_i x_i + Σ_j c_j s_j − C)²
//
// with c_j = 2^j for j < M−1 and c_{M−1} = C + 1 − 2^{M−1}, so the slack
// register spans exactly 0..C (Lucas 2014 encoding). With A > max_i v_i
// the optimum is always feasible and its energy is −(best value): a
// state δ over capacity pays ≥ A·δ², while restoring feasibility drops
// at most δ items (weights are ≥ 1) losing ≤ δ·max v < A·δ². The tight
// default keeps coefficients small, so toy instances stay exact in the
// 8-bit weight planes — a crisp integer oracle for the differential
// harness. All coefficients are integers either way.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ising/generic.hpp"
#include "ising/model.hpp"

namespace cim::qubo {

/// Construction-validated instance: >= 1 item, all values/weights >= 1,
/// capacity >= 1 (ConfigError otherwise).
struct KnapsackInstance {
  std::string name;
  std::vector<long long> values;
  std::vector<long long> weights;
  long long capacity = 0;

  std::size_t items() const { return values.size(); }
};

KnapsackInstance make_knapsack(std::string name,
                               std::vector<long long> values,
                               std::vector<long long> weights,
                               long long capacity);

struct KnapsackEncoding {
  ising::GenericModel model;  ///< items + slack_bits spins
  std::size_t items = 0;
  std::size_t slack_bits = 0;
  long long penalty = 0;                 ///< A
  std::vector<long long> slack_coeff;    ///< c_j

  struct Decoded {
    std::vector<std::uint8_t> chosen;  ///< per item
    long long value = 0;
    long long weight = 0;
    bool feasible = false;  ///< weight <= capacity
  };
  Decoded decode(const KnapsackInstance& instance,
                 std::span<const ising::Spin> spins) const;
};

/// Builds the encoding; `penalty` 0 selects the default max value + 1.
KnapsackEncoding encode_knapsack(const KnapsackInstance& instance,
                                 long long penalty = 0);

/// Exact best feasible value by enumeration; items <= 24.
long long brute_force_knapsack(const KnapsackInstance& instance);

}  // namespace cim::qubo
