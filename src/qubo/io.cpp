#include "qubo/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace cim::qubo {

namespace {

struct Line {
  std::size_t number = 0;  ///< 1-based line number in the source text
  std::vector<std::string> tokens;
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ConfigError("line " + std::to_string(line) + ": " + what);
}

/// Splits into whitespace-token lines; '#' starts a comment when
/// `comments` is allowed; blank/comment-only lines are dropped but keep
/// the numbering of the survivors.
std::vector<Line> tokenize(const std::string& text, bool comments) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t stop = text.find('\n', start);
    if (stop == std::string::npos) stop = text.size();
    std::string raw = text.substr(start, stop - start);
    ++number;
    start = stop + 1;
    if (comments) {
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
    }
    Line line;
    line.number = number;
    std::istringstream stream(raw);
    std::string token;
    while (stream >> token) line.tokens.push_back(std::move(token));
    if (!line.tokens.empty()) lines.push_back(std::move(line));
    if (stop == text.size()) break;
  }
  return lines;
}

/// Strict integer: the whole token must parse and fit [lo, hi].
long long parse_int(const std::string& token, std::size_t line,
                    const char* what, long long lo, long long hi) {
  long long value = 0;
  const auto [end, err] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (err != std::errc{} || end != token.data() + token.size()) {
    fail(line, std::string(what) + " '" + token + "' is not an integer" +
                   (err == std::errc::result_out_of_range
                        ? " in range (overflow)"
                        : ""));
  }
  if (value < lo || value > hi) {
    fail(line, std::string(what) + " " + token + " out of range [" +
                   std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

/// Strict finite double: the whole token must parse.
double parse_double(const std::string& token, std::size_t line,
                    const char* what) {
  double value = 0.0;
  const auto [end, err] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (err != std::errc{} || end != token.data() + token.size() ||
      !std::isfinite(value)) {
    fail(line, std::string(what) + " '" + token + "' is not a finite number");
  }
  return value;
}

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string read_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw Error("cannot open file: " + path);
  std::ostringstream content;
  content << stream.rdbuf();
  if (!stream.good() && !stream.eof()) {
    throw Error("error while reading file: " + path);
  }
  return content.str();
}

}  // namespace

ising::MaxCutProblem parse_gset(const std::string& text,
                                const std::string& name) {
  const auto lines = tokenize(text, /*comments=*/false);
  CIM_REQUIRE(!lines.empty(), "gset: empty input");
  const Line& header = lines.front();
  if (header.tokens.size() != 2) {
    fail(header.number, "gset header must be '<n_vertices> <n_edges>'");
  }
  const long long n = parse_int(header.tokens[0], header.number,
                                "vertex count", 2,
                                std::numeric_limits<std::int32_t>::max());
  const long long m =
      parse_int(header.tokens[1], header.number, "edge count", 0,
                std::numeric_limits<std::int32_t>::max());

  if (lines.size() - 1 < static_cast<std::size_t>(m)) {
    fail(lines.back().number,
         "truncated: header declares " + std::to_string(m) + " edges, got " +
             std::to_string(lines.size() - 1));
  }
  if (lines.size() - 1 > static_cast<std::size_t>(m)) {
    fail(lines[1 + static_cast<std::size_t>(m)].number,
         "trailing data after the declared " + std::to_string(m) + " edges");
  }

  std::vector<ising::WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  std::set<std::pair<long long, long long>> seen;
  for (std::size_t k = 1; k < lines.size(); ++k) {
    const Line& line = lines[k];
    if (line.tokens.size() != 3) {
      fail(line.number, "edge line must be '<a> <b> <weight>'");
    }
    const long long a =
        parse_int(line.tokens[0], line.number, "edge endpoint", 1, n);
    const long long b =
        parse_int(line.tokens[1], line.number, "edge endpoint", 1, n);
    if (a == b) fail(line.number, "self-loop on vertex " + line.tokens[0]);
    const long long w =
        parse_int(line.tokens[2], line.number, "edge weight",
                  std::numeric_limits<std::int32_t>::min(),
                  std::numeric_limits<std::int32_t>::max());
    if (w == 0) fail(line.number, "zero-weight edge must be omitted");
    const auto pair = std::minmax(a, b);
    if (!seen.insert({pair.first, pair.second}).second) {
      fail(line.number,
           "duplicate edge (" + line.tokens[0] + ", " + line.tokens[1] + ")");
    }
    edges.push_back({static_cast<ising::SpinIndex>(a - 1),
                     static_cast<ising::SpinIndex>(b - 1),
                     static_cast<std::int32_t>(w)});
  }
  return ising::MaxCutProblem(name, static_cast<std::size_t>(n),
                              std::move(edges));
}

std::string write_gset(const ising::MaxCutProblem& problem) {
  std::string out = std::to_string(problem.size()) + " " +
                    std::to_string(problem.edge_count()) + "\n";
  for (const ising::WeightedEdge& e : problem.edges()) {
    out += std::to_string(e.a + 1) + " " + std::to_string(e.b + 1) + " " +
           std::to_string(e.w) + "\n";
  }
  return out;
}

ising::GenericModel parse_jh(const std::string& text,
                             const std::string& name) {
  const auto lines = tokenize(text, /*comments=*/true);
  CIM_REQUIRE(!lines.empty(), "jh: empty input");
  const Line& header = lines.front();
  if (header.tokens.size() != 2) {
    fail(header.number, "jh header must be '<n_spins> <n_terms>'");
  }
  const long long n = parse_int(header.tokens[0], header.number,
                                "spin count", 1,
                                std::numeric_limits<std::int32_t>::max());
  const long long m =
      parse_int(header.tokens[1], header.number, "term count", 0,
                std::numeric_limits<std::int32_t>::max());

  ising::GenericModel model(name, static_cast<std::size_t>(n));
  bool saw_offset = false;
  long long terms = 0;
  std::set<std::pair<long long, long long>> seen;
  for (std::size_t k = 1; k < lines.size(); ++k) {
    const Line& line = lines[k];
    if (line.tokens[0] == "offset") {
      if (line.tokens.size() != 2) {
        fail(line.number, "offset line must be 'offset <value>'");
      }
      if (saw_offset) fail(line.number, "duplicate offset line");
      saw_offset = true;
      model.add_offset(parse_double(line.tokens[1], line.number, "offset"));
      continue;
    }
    if (line.tokens.size() != 3) {
      fail(line.number, "term line must be '<i> <j> <value>'");
    }
    ++terms;
    if (terms > m) {
      fail(line.number,
           "trailing data after the declared " + std::to_string(m) +
               " terms");
    }
    const long long i =
        parse_int(line.tokens[0], line.number, "spin index", 0, n - 1);
    const long long j =
        parse_int(line.tokens[1], line.number, "spin index", 0, n - 1);
    const double value =
        parse_double(line.tokens[2], line.number, "coefficient");
    const auto pair = std::minmax(i, j);
    if (!seen.insert({pair.first, pair.second}).second) {
      fail(line.number, "duplicate term (" + line.tokens[0] + ", " +
                            line.tokens[1] + ")");
    }
    if (i == j) {
      model.add_field(static_cast<ising::SpinIndex>(i), value);
    } else {
      model.add_coupling(static_cast<ising::SpinIndex>(i),
                         static_cast<ising::SpinIndex>(j), value);
    }
  }
  if (terms < m) {
    fail(lines.back().number,
         "truncated: header declares " + std::to_string(m) + " terms, got " +
             std::to_string(terms));
  }
  return model;
}

std::string write_jh(const ising::GenericModel& model) {
  std::size_t terms = model.coupling_count();
  for (const double h : model.fields()) {
    if (h != 0.0) ++terms;  // NOLINT(unit-float-eq) structural zero
  }
  std::string out = std::to_string(model.size()) + " " +
                    std::to_string(terms) + "\n";
  if (model.offset() != 0.0) {  // NOLINT(unit-float-eq) structural zero
    out += "offset " + format_double(model.offset()) + "\n";
  }
  for (ising::SpinIndex i = 0; i < model.size(); ++i) {
    const double h = model.field(i);
    if (h == 0.0) continue;  // NOLINT(unit-float-eq) structural zero
    out += std::to_string(i) + " " + std::to_string(i) + " " +
           format_double(h) + "\n";
  }
  for (const ising::GenericModel::Coupling& c : model.couplings()) {
    out += std::to_string(c.a) + " " + std::to_string(c.b) + " " +
           format_double(c.j) + "\n";
  }
  return out;
}

ising::MaxCutProblem load_gset_file(const std::string& path) {
  return parse_gset(read_file(path), path);
}

ising::GenericModel load_jh_file(const std::string& path) {
  return parse_jh(read_file(path), path);
}

}  // namespace cim::qubo
