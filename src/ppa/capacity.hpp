// Memory-capacity formulas (Fig. 1, Table I, §VI).
//
// For an N-city TSP under the Ising formulation:
//   * naive (PBM, no clustering): N² spins, N⁴ weights — O(N⁴) memory;
//   * clustered [3]: p·N spins, (p·N)² weights — O(N²);
//   * this work (compact digital-CIM windows): (p²+2p)·p² weights per
//     window × one window per cluster — O(N).
//
// All capacities are in weight counts; bytes assume the paper's 8-bit
// precision. These formulas reproduce every capacity entry of Table I and
// the 46.4 Mb pla85900 headline (verified in tests).
#pragma once

#include <cstdint>

namespace cim::ppa {

struct CapacityModel {
  unsigned weight_bits = 8;

  /// O(N⁴): full PBM weight count.
  double naive_weights(double n) const { return n * n * n * n; }
  /// N² spins of the full formulation.
  double naive_spins(double n) const { return n * n; }

  /// O(N²): clustered weight matrix (p·N)².
  double clustered_weights(double n, double p) const {
    return (p * n) * (p * n);
  }
  double clustered_spins(double n, double p) const { return p * n; }

  /// O(N): compact windows, fixed strategy — N/p windows.
  double compact_weights_fixed(double n, double p) const {
    return (p * p + 2.0 * p) * p * p * (n / p);
  }

  /// O(N): compact windows, semi-flexible — 2N/(1+p_max) windows all
  /// provisioned at p_max.
  double compact_weights_semiflex(double n, double p_max) const {
    return (p_max * p_max + 2.0 * p_max) * p_max * p_max *
           (2.0 * n / (1.0 + p_max));
  }

  double bits(double weights) const {
    return weights * static_cast<double>(weight_bits);
  }
  double bytes(double weights) const { return bits(weights) / 8.0; }
};

}  // namespace cim::ppa
