#include "ppa/capacity.hpp"

// Header-only arithmetic; this translation unit anchors the library.
