// PPA projection of a Max-Cut macro on this substrate — an all-to-all
// n×n weight array with per-spin adder trees (the STATICA/Amorphica
// architecture shape) built from our 14T cells and 16 nm constants. This
// puts a like-for-like row under Table III: same workload class as the
// competitors, this work's technology and cell.
#pragma once

#include <cstdint>

#include "ppa/tech.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::Milliwatt;
using util::SquareMicron;

struct MaxCutMacroReport {
  std::size_t spins = 0;
  unsigned weight_bits = 8;
  double capacity_bits = 0.0;  ///< n² weights × precision
  SquareMicron area;           ///< cells + per-column adder trees + decode
  Milliwatt power;             ///< all-spin update streaming at the clock
  SquareMicron area_per_bit() const { return area / capacity_bits; }
  double power_per_bit_w() const { return power.watts() / capacity_bits; }
};

/// Projects an n-spin all-to-all Max-Cut macro.
MaxCutMacroReport maxcut_macro_report(std::size_t spins,
                                      unsigned weight_bits = 8,
                                      const TechnologyParams& tech =
                                          tech16nm());

}  // namespace cim::ppa
