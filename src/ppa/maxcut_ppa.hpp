// PPA projection of a Max-Cut macro on this substrate — an all-to-all
// n×n weight array with per-spin adder trees (the STATICA/Amorphica
// architecture shape) built from our 14T cells and 16 nm constants. This
// puts a like-for-like row under Table III: same workload class as the
// competitors, this work's technology and cell.
#pragma once

#include <cstdint>

#include "ppa/tech.hpp"

namespace cim::ppa {

struct MaxCutMacroReport {
  std::size_t spins = 0;
  unsigned weight_bits = 8;
  double capacity_bits = 0.0;   ///< n² weights × precision
  double area_um2 = 0.0;        ///< cells + per-column adder trees + decode
  double power_w = 0.0;         ///< all-spin update streaming at the clock
  double area_per_bit_um2() const { return area_um2 / capacity_bits; }
  double power_per_bit_w() const { return power_w / capacity_bits; }
};

/// Projects an n-spin all-to-all Max-Cut macro.
MaxCutMacroReport maxcut_macro_report(std::size_t spins,
                                      unsigned weight_bits = 8,
                                      const TechnologyParams& tech =
                                          tech16nm());

}  // namespace cim::ppa
