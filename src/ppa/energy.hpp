// Dynamic-energy model (Fig. 7(d)).
//
// Read/compute energy: one window MAC activates (p²+2p)·8 NOR products and
// roughly the same number of adder-tree bit ops. Write energy: every
// write-back epoch rewrites the full provisioned capacity. Transfers: the
// p boundary bits that cross array edges per update. The write share is
// small because writes happen once per 50 iterations (the paper's
// observation on Fig. 7(c)/(d)).
#pragma once

#include <cstdint>

#include "cim/activity.hpp"
#include "cim/chip.hpp"
#include "noise/schedule.hpp"
#include "ppa/tech.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::Nanosecond;
using util::Picojoule;

struct EnergyBreakdown {
  Picojoule read_compute;
  Picojoule write;
  Picojoule transfer;
  Picojoule leakage;
  Picojoule total() const {
    return read_compute + write + transfer + leakage;
  }
};

/// Energy per single window MAC at the hardware window geometry.
Picojoule mac_energy(std::size_t window_rows, unsigned weight_bits,
                     const TechnologyParams& tech = tech16nm());

struct AnalyticActivity {
  double macs = 0.0;            ///< total window MACs
  double writeback_epochs = 0.0;///< full-capacity rewrites
  double edge_bits = 0.0;       ///< boundary bits moved between arrays
};

/// Analytic activity for a solve: every cluster attempts one swap
/// (4 MACs) per iteration at every level; the cluster count shrinks by
/// the mean cluster size per level.
AnalyticActivity analytic_activity(std::size_t leaf_clusters,
                                   double mean_cluster_size,
                                   std::size_t depth,
                                   const noise::AnnealSchedule::Params&
                                       schedule,
                                   std::uint32_t p);

/// Energy from analytic activity on a planned chip.
EnergyBreakdown energy_from_analytic(const AnalyticActivity& activity,
                                     const hw::ChipLayout& layout,
                                     std::size_t window_rows,
                                     unsigned weight_bits,
                                     Nanosecond runtime,
                                     const TechnologyParams& tech =
                                         tech16nm());

/// Energy from the counters of a real solve. Charged at the *hardware*
/// window geometry (redundant provisioned columns are written too), which
/// is why the chip layout is required.
EnergyBreakdown energy_from_activity(const hw::HardwareActivity& activity,
                                     const hw::ChipLayout& layout,
                                     std::size_t window_rows,
                                     unsigned weight_bits,
                                     Nanosecond runtime,
                                     const TechnologyParams& tech =
                                         tech16nm());

}  // namespace cim::ppa
