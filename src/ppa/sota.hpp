// Table III: comparison with state-of-the-art scalable annealers. The
// competitor rows are published silicon numbers carried as constants; the
// "this design" row is computed from our PPA models. The functional
// normalisation divides by the weight bits an *unclustered* formulation
// would need (N⁴ weights × precision) — the paper's argument that solving
// TSP at this scale is worth ~10¹³× in effective area/power efficiency.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ppa/report.hpp"
#include "util/units.hpp"

namespace cim::ppa {

struct SotaEntry {
  std::string name;
  std::string technology;
  std::string problem;
  double spins = 0.0;
  double weight_bits = 0.0;       ///< on-chip weight memory (bits)
  double chip_area_mm2 = 0.0;     ///< published constant, carried as-is
  std::optional<double> power_w;  ///< some papers do not report power
  util::SquareMicron area_per_bit() const {
    return util::SquareMicron::from_mm2(chip_area_mm2) / weight_bits;
  }
  std::optional<double> power_per_bit_w() const {
    if (!power_w) return std::nullopt;
    return *power_w / weight_bits;
  }
};

/// The five competitor rows of Table III.
const std::vector<SotaEntry>& sota_annealers();

struct ThisDesignRow {
  double physical_spins = 0.0;      ///< p·N spins actually instantiated
  double functional_spins = 0.0;    ///< N² spins replaced
  double physical_weight_bits = 0.0;
  double functional_weight_bits = 0.0;  ///< N⁴ × precision replaced
  util::SquareMicron chip_area;
  util::Milliwatt power;

  util::SquareMicron physical_area_per_bit() const {
    return chip_area / physical_weight_bits;
  }
  util::SquareMicron functional_area_per_bit() const {
    return chip_area / functional_weight_bits;
  }
  double physical_power_per_bit_w() const {
    return power.watts() / physical_weight_bits;
  }
  double functional_power_per_bit_w() const {
    return power.watts() / functional_weight_bits;
  }
};

/// Builds the "this design" row from a PPA report of the flagship design
/// point (the paper uses pla85900 at p_max = 3).
ThisDesignRow this_design_row(const PpaReport& report);

}  // namespace cim::ppa
