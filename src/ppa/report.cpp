#include "ppa/report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cim::ppa {

namespace {

hw::ChipConfig chip_config(const DesignPoint& point) {
  hw::ChipConfig config;
  config.n_cities = point.n_cities;
  config.p = point.p;
  config.strategy = point.strategy;
  config.array.p_max = point.p;
  config.array.weight_bits = point.weight_bits;
  return config;
}

double mean_cluster_size(const DesignPoint& point) {
  return point.strategy == hw::SizingStrategy::kFixed
             ? static_cast<double>(point.p)
             : (1.0 + static_cast<double>(point.p)) / 2.0;
}

void finish(PpaReport& report, const TechnologyParams& tech) {
  const hw::ChipConfig config = chip_config(report.point);
  report.array = array_area(config.array, tech);
  report.chip_area = chip_area(report.layout, config.array, tech);
  const Nanosecond total = report.latency.total();
  report.average_power = total.nanoseconds() > 0.0
                             ? report.energy.total() / total
                             : Milliwatt(0.0);
}

}  // namespace

PpaReport analytic_report(const DesignPoint& point,
                          std::optional<std::size_t> depth_override,
                          const TechnologyParams& tech) {
  CIM_REQUIRE(point.n_cities >= 1, "design point needs a problem size");
  PpaReport report;
  report.point = point;
  const hw::ChipConfig config = chip_config(point);
  report.layout = hw::plan_chip(config);
  report.depth = depth_override.value_or(
      estimate_depth(point.n_cities, mean_cluster_size(point)));

  const std::size_t rows = config.array.window().rows();
  const CycleCounts cycles =
      analytic_cycles(report.depth, point.schedule, rows);
  report.latency = latency_from_cycles(cycles, tech);

  const AnalyticActivity activity =
      analytic_activity(report.layout.windows, mean_cluster_size(point),
                        report.depth, point.schedule, point.p);
  report.energy =
      energy_from_analytic(activity, report.layout, rows, point.weight_bits,
                           report.latency.total(), tech);
  finish(report, tech);
  return report;
}

PpaReport measured_report(const DesignPoint& point,
                          const hw::HardwareActivity& activity,
                          std::size_t hierarchy_depth,
                          const TechnologyParams& tech) {
  CIM_REQUIRE(point.n_cities >= 1, "design point needs a problem size");
  PpaReport report;
  report.point = point;
  const hw::ChipConfig config = chip_config(point);
  report.layout = hw::plan_chip(config);
  report.depth = hierarchy_depth;

  const std::size_t rows = config.array.window().rows();
  report.latency = latency_from_cycles(measured_cycles(activity), tech);
  report.energy =
      energy_from_activity(activity, report.layout, rows, point.weight_bits,
                           report.latency.total(), tech);
  finish(report, tech);
  return report;
}

}  // namespace cim::ppa
