#include "ppa/area.hpp"

namespace cim::ppa {

ArrayArea array_area(const hw::ArrayGeometry& geometry,
                     const TechnologyParams& tech) {
  ArrayArea area;
  area.height_um = static_cast<double>(geometry.cell_rows()) *
                       tech.cell_height_um +
                   tech.row_periph_um;
  area.width_um = static_cast<double>(geometry.cell_cols()) *
                      tech.cell_width_um +
                  tech.col_periph_um;
  return area;
}

SquareMicron chip_area(const hw::ChipLayout& layout,
                       const hw::ArrayGeometry& geometry,
                       const TechnologyParams& tech) {
  const ArrayArea one = array_area(geometry, tech);
  return static_cast<double>(layout.arrays) * one.area() *
         (1.0 + tech.routing_overhead);
}

}  // namespace cim::ppa
