#include "ppa/tech.hpp"

namespace cim::ppa {

const TechnologyParams& tech16nm() {
  static const TechnologyParams params{};
  return params;
}

}  // namespace cim::ppa
