// Latency model (Fig. 7(c), §VI time-to-solution).
//
// One swap update is 4 MAC cycles (two local energies before the swap, two
// after — Fig. 5(a)); with chromatic parallelism every cluster of one
// parity updates simultaneously, so an iteration costs
// (parallel phases) × 4 cycles regardless of problem size. Weights are
// rewritten every `iterations_per_step` iterations, costing one cycle per
// window row (arrays refresh in parallel). Hierarchical annealing repeats
// the schedule once per level.
#pragma once

#include <cstddef>

#include "cim/activity.hpp"
#include "noise/schedule.hpp"
#include "ppa/tech.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::Nanosecond;

struct CycleCounts {
  double update_cycles = 0.0;
  double writeback_cycles = 0.0;
  double total() const { return update_cycles + writeback_cycles; }
};

struct LatencyBreakdown {
  Nanosecond read_compute;
  Nanosecond write;
  Nanosecond total() const { return read_compute + write; }
};

/// Analytic cycle counts for `depth` hierarchy levels of the schedule.
/// `window_rows` is the hardware window height (p²+2p); `phases` the
/// chromatic phase count per iteration (2 for an even ring).
CycleCounts analytic_cycles(std::size_t depth,
                            const noise::AnnealSchedule::Params& schedule,
                            std::size_t window_rows, std::size_t phases = 2);

/// Cycle counts observed by a real solve.
CycleCounts measured_cycles(const hw::HardwareActivity& activity);

LatencyBreakdown latency_from_cycles(const CycleCounts& cycles,
                                     const TechnologyParams& tech =
                                         tech16nm());

/// Estimated hierarchy depth for an N-city problem: levels needed to
/// shrink N to `top_size` when each level divides the item count by the
/// mean cluster size.
std::size_t estimate_depth(std::size_t n_cities, double mean_cluster_size,
                           std::size_t top_size = 4);

}  // namespace cim::ppa
