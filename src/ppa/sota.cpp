#include "ppa/sota.hpp"

namespace cim::ppa {

const std::vector<SotaEntry>& sota_annealers() {
  static const std::vector<SotaEntry> entries = {
      {"STATICA [18]", "65nm CMOS", "Max-Cut", 512.0, 1.31e6, 12.0, 0.649},
      {"CIM-Spin [22]", "65nm CMOS", "Max-Cut", 480.0, 17.28e3, 0.4,
       360e-6},
      {"Takemoto [23]", "40nm CMOS", "Max-Cut", 16.0e3 * 9.0, 0.64e6, 10.8,
       std::nullopt},
      {"Su [27]", "65nm CMOS", "Max-Cut", 1024.0, 57e3, 0.34, 1.17e-3},
      {"Amorphica [25]", "40nm CMOS", "Max-Cut", 2.0e3, 8e6, 9.0, 0.313},
  };
  return entries;
}

ThisDesignRow this_design_row(const PpaReport& report) {
  ThisDesignRow row;
  const double n = static_cast<double>(report.point.n_cities);
  const double p = static_cast<double>(report.point.p);
  // One spin per provisioned window column: p² × 2N/(1+p) windows
  // (0.39 M for pla85900 at p_max = 3, matching the paper's footnote).
  row.physical_spins = p * p * 2.0 * n / (1.0 + p);
  row.functional_spins = n * n;
  row.physical_weight_bits =
      static_cast<double>(report.layout.capacity_bits);
  row.functional_weight_bits =
      n * n * n * n * static_cast<double>(report.point.weight_bits);
  row.chip_area = report.chip_area;
  row.power = report.average_power;
  return row;
}

}  // namespace cim::ppa
