// Area model (Table II, Fig. 7(b), Table III).
#pragma once

#include "cim/array.hpp"
#include "cim/chip.hpp"
#include "ppa/tech.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::SquareMicron;

struct ArrayArea {
  double height_um = 0.0;
  double width_um = 0.0;
  SquareMicron area() const { return SquareMicron(height_um * width_um); }
};

/// Physical footprint of one array (cells + peripherals).
ArrayArea array_area(const hw::ArrayGeometry& geometry,
                     const TechnologyParams& tech = tech16nm());

/// Chip area for a planned layout (arrays + routing overhead).
SquareMicron chip_area(const hw::ChipLayout& layout,
                       const hw::ArrayGeometry& geometry,
                       const TechnologyParams& tech = tech16nm());

}  // namespace cim::ppa
