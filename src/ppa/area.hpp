// Area model (Table II, Fig. 7(b), Table III).
#pragma once

#include "cim/array.hpp"
#include "cim/chip.hpp"
#include "ppa/tech.hpp"

namespace cim::ppa {

struct ArrayArea {
  double height_um = 0.0;
  double width_um = 0.0;
  double area_um2() const { return height_um * width_um; }
};

/// Physical footprint of one array (cells + peripherals).
ArrayArea array_area(const hw::ArrayGeometry& geometry,
                     const TechnologyParams& tech = tech16nm());

/// Chip area in µm² for a planned layout (arrays + routing overhead).
double chip_area_um2(const hw::ChipLayout& layout,
                     const hw::ArrayGeometry& geometry,
                     const TechnologyParams& tech = tech16nm());

}  // namespace cim::ppa
