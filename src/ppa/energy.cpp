#include "ppa/energy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cim::ppa {

Picojoule mac_energy(std::size_t window_rows, unsigned weight_bits,
                     const TechnologyParams& tech) {
  // Products (one NOR per cell) + adder-tree ops (≈ one per cell across
  // the reduction and shift-and-add stages). fJ → pJ is the only scale
  // factor; Picojoule carries the unit from here on.
  const double bit_ops = 2.0 * static_cast<double>(window_rows) *
                         static_cast<double>(weight_bits);
  return Picojoule(bit_ops * tech.bit_op_fj * 1e-3);
}

AnalyticActivity analytic_activity(
    std::size_t leaf_clusters, double mean_cluster_size, std::size_t depth,
    const noise::AnnealSchedule::Params& schedule, std::uint32_t p) {
  CIM_REQUIRE(mean_cluster_size > 1.0, "mean cluster size must exceed 1");
  const noise::AnnealSchedule sched(schedule);
  AnalyticActivity activity;
  double clusters = static_cast<double>(leaf_clusters);
  const double iterations = static_cast<double>(sched.total_iterations());
  for (std::size_t level = 0; level < depth; ++level) {
    activity.macs += clusters * iterations * 4.0;
    activity.edge_bits += clusters * iterations * static_cast<double>(p);
    clusters = std::max(1.0, clusters / mean_cluster_size);
  }
  activity.writeback_epochs =
      static_cast<double>(depth) * static_cast<double>(sched.epochs());
  return activity;
}

namespace {

EnergyBreakdown assemble(double macs, double writeback_epochs,
                         double edge_bits, const hw::ChipLayout& layout,
                         std::size_t window_rows, unsigned weight_bits,
                         Nanosecond runtime, const TechnologyParams& tech) {
  EnergyBreakdown energy;
  energy.read_compute =
      macs * mac_energy(window_rows, weight_bits, tech);
  energy.write = Picojoule(writeback_epochs *
                           static_cast<double>(layout.capacity_bits) *
                           tech.write_bit_fj * 1e-3);
  energy.transfer = Picojoule(edge_bits * tech.transfer_bit_fj * 1e-3);
  const double capacity_mb =
      static_cast<double>(layout.capacity_bits) / 1e6;
  // leakage is a power (W per Mb); W × ns = 10³ pJ.
  energy.leakage = Picojoule(tech.leakage_w_per_mb * capacity_mb *
                             runtime.nanoseconds() * 1e3);
  return energy;
}

}  // namespace

EnergyBreakdown energy_from_analytic(const AnalyticActivity& activity,
                                     const hw::ChipLayout& layout,
                                     std::size_t window_rows,
                                     unsigned weight_bits,
                                     Nanosecond runtime,
                                     const TechnologyParams& tech) {
  return assemble(activity.macs, activity.writeback_epochs,
                  activity.edge_bits, layout, window_rows, weight_bits,
                  runtime, tech);
}

EnergyBreakdown energy_from_activity(
    const hw::HardwareActivity& activity, const hw::ChipLayout& layout,
    std::size_t window_rows, unsigned weight_bits, Nanosecond runtime,
    const TechnologyParams& tech) {
  // writeback_events counts one event per window per epoch; convert to
  // full-capacity epochs so redundant provisioned columns are charged.
  const double epochs =
      layout.windows > 0
          ? static_cast<double>(activity.storage.writeback_events) /
                static_cast<double>(layout.windows)
          : 0.0;
  return assemble(static_cast<double>(activity.storage.macs), epochs,
                  static_cast<double>(activity.dataflow
                                          .edge_bits_transferred()),
                  layout, window_rows, weight_bits, runtime, tech);
}

}  // namespace cim::ppa
