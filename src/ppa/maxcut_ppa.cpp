#include "ppa/maxcut_ppa.hpp"

#include "ppa/energy.hpp"
#include "util/error.hpp"

namespace cim::ppa {

MaxCutMacroReport maxcut_macro_report(std::size_t spins,
                                      unsigned weight_bits,
                                      const TechnologyParams& tech) {
  CIM_REQUIRE(spins >= 2, "macro needs at least two spins");
  MaxCutMacroReport report;
  report.spins = spins;
  report.weight_bits = weight_bits;
  const double n = static_cast<double>(spins);
  report.capacity_bits = n * n * static_cast<double>(weight_bits);

  // Geometry: n cell rows × n weight columns (weight_bits bit-cells
  // each), row peripherals once, column peripherals (adder trees) once —
  // the same composition as the TSP array model.
  const double height =
      n * tech.cell_height_um + tech.row_periph_um;
  const double width = n * static_cast<double>(weight_bits) *
                           tech.cell_width_um +
                       tech.col_periph_um;
  report.area =
      SquareMicron(height * width * (1.0 + tech.routing_overhead));

  // Power: chromatic update streams one colour class per cycle; on dense
  // graphs that approaches one full-column MAC per spin per sweep. Charge
  // one n-row MAC per cycle (pipelined) plus leakage. pJ per 1/GHz-cycle
  // streams as pJ·GHz = mW; leakage W → mW is the only scale factor.
  const util::Picojoule mac = mac_energy(spins, weight_bits, tech);
  report.power =
      Milliwatt(mac.picojoules() * tech.clock_ghz +
                tech.leakage_w_per_mb * report.capacity_bits / 1e6 * 1e3);
  return report;
}

}  // namespace cim::ppa
