// Chip floorplan model: arranges the planned arrays into a near-square
// grid, sizes the global interconnect (an H-tree distributing inputs /
// collecting boundary bits), and refines the routing-overhead constant of
// the aggregate area model into an explicit wire-length estimate.
#pragma once

#include <cstddef>

#include "cim/chip.hpp"
#include "ppa/area.hpp"
#include "ppa/tech.hpp"

namespace cim::ppa {

struct Floorplan {
  std::size_t grid_cols = 0;   ///< arrays per row
  std::size_t grid_rows = 0;   ///< array rows (last row may be partial)
  double width_um = 0.0;       ///< chip width including routing channels
  double height_um = 0.0;
  double aspect_ratio = 1.0;   ///< width / height
  SquareMicron array_area;     ///< sum of array footprints
  SquareMicron channel_area;   ///< inter-array routing channels
  double htree_wire_um = 0.0;  ///< total H-tree trunk wire length
  SquareMicron area() const { return SquareMicron(width_um * height_um); }
  /// Fraction of the die that is routing rather than arrays.
  double routing_fraction() const {
    const SquareMicron total = area();
    return total.um2() > 0.0 ? 1.0 - array_area / total : 0.0;
  }
};

struct FloorplanOptions {
  double channel_um = 2.0;  ///< routing channel between adjacent arrays
};

/// Plans the layout for `layout.arrays` arrays of the given geometry.
Floorplan plan_floorplan(const hw::ChipLayout& layout,
                         const hw::ArrayGeometry& geometry,
                         const FloorplanOptions& options = {},
                         const TechnologyParams& tech = tech16nm());

}  // namespace cim::ppa
