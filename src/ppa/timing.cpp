#include "ppa/timing.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cim::ppa {

CycleCounts analytic_cycles(std::size_t depth,
                            const noise::AnnealSchedule::Params& schedule,
                            std::size_t window_rows, std::size_t phases) {
  CIM_REQUIRE(depth >= 1, "depth must be positive");
  const noise::AnnealSchedule sched(schedule);
  CycleCounts counts;
  const double iterations =
      static_cast<double>(sched.total_iterations());
  counts.update_cycles = static_cast<double>(depth) * iterations *
                         static_cast<double>(phases) * 4.0;
  counts.writeback_cycles = static_cast<double>(depth) *
                            static_cast<double>(sched.epochs()) *
                            static_cast<double>(window_rows);
  return counts;
}

CycleCounts measured_cycles(const hw::HardwareActivity& activity) {
  CycleCounts counts;
  counts.update_cycles = static_cast<double>(activity.update_cycles);
  counts.writeback_cycles = static_cast<double>(activity.writeback_cycles);
  return counts;
}

LatencyBreakdown latency_from_cycles(const CycleCounts& cycles,
                                     const TechnologyParams& tech) {
  const double period_ns = 1.0 / tech.clock_ghz;
  LatencyBreakdown lat;
  lat.read_compute =
      Nanosecond(cycles.update_cycles * tech.cycles_per_mac * period_ns);
  lat.write = Nanosecond(cycles.writeback_cycles *
                         tech.cycles_per_write_row * period_ns);
  return lat;
}

std::size_t estimate_depth(std::size_t n_cities, double mean_cluster_size,
                           std::size_t top_size) {
  CIM_REQUIRE(mean_cluster_size > 1.0, "mean cluster size must exceed 1");
  CIM_REQUIRE(top_size >= 2, "top_size must be at least 2");
  if (n_cities <= top_size) return 1;
  const double levels =
      std::log(static_cast<double>(n_cities) /
               static_cast<double>(top_size)) /
      std::log(mean_cluster_size);
  return static_cast<std::size_t>(std::ceil(levels));
}

}  // namespace cim::ppa
