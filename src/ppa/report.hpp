// End-to-end PPA report for one (instance size, p_max, strategy) design
// point — the quantity rows of Fig. 7(b)–(d) and Table III.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "anneal/clustered_annealer.hpp"
#include "cim/chip.hpp"
#include "ppa/area.hpp"
#include "ppa/energy.hpp"
#include "ppa/timing.hpp"

namespace cim::ppa {

struct DesignPoint {
  std::string instance_name;
  std::size_t n_cities = 0;
  std::uint32_t p = 3;
  hw::SizingStrategy strategy = hw::SizingStrategy::kSemiFlexible;
  noise::AnnealSchedule::Params schedule;
  unsigned weight_bits = 8;
};

struct PpaReport {
  DesignPoint point;
  hw::ChipLayout layout;
  ArrayArea array;
  double chip_area_um2 = 0.0;
  std::size_t depth = 0;
  LatencyBreakdown latency;
  EnergyBreakdown energy;
  double average_power_w = 0.0;

  double capacity_mb() const {
    return static_cast<double>(layout.capacity_bits) / 1e6;
  }
  double area_per_weight_bit_um2() const {
    return chip_area_um2 / static_cast<double>(layout.capacity_bits);
  }
  double power_per_weight_bit_w() const {
    return average_power_w / static_cast<double>(layout.capacity_bits);
  }
};

/// Analytic report: hierarchy depth estimated from the mean cluster size
/// ((1+p)/2 for semi-flexible, p for fixed) unless `depth_override` gives
/// the real measured depth.
PpaReport analytic_report(const DesignPoint& point,
                          std::optional<std::size_t> depth_override = {},
                          const TechnologyParams& tech = tech16nm());

/// Report from a real solve's hardware activity.
PpaReport measured_report(const DesignPoint& point,
                          const anneal::AnnealResult& result,
                          const TechnologyParams& tech = tech16nm());

}  // namespace cim::ppa
