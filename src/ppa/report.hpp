// End-to-end PPA report for one (instance size, p_max, strategy) design
// point — the quantity rows of Fig. 7(b)–(d) and Table III.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cim/activity.hpp"
#include "cim/chip.hpp"
#include "ppa/area.hpp"
#include "ppa/energy.hpp"
#include "ppa/timing.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::Milliwatt;

struct DesignPoint {
  std::string instance_name;
  std::size_t n_cities = 0;
  std::uint32_t p = 3;
  hw::SizingStrategy strategy = hw::SizingStrategy::kSemiFlexible;
  noise::AnnealSchedule::Params schedule;
  unsigned weight_bits = 8;
};

struct PpaReport {
  DesignPoint point;
  hw::ChipLayout layout;
  ArrayArea array;
  SquareMicron chip_area;
  std::size_t depth = 0;
  LatencyBreakdown latency;
  EnergyBreakdown energy;
  Milliwatt average_power;

  double capacity_mb() const {
    return static_cast<double>(layout.capacity_bits) / 1e6;
  }
  SquareMicron area_per_weight_bit() const {
    return chip_area / static_cast<double>(layout.capacity_bits);
  }
  double power_per_weight_bit_w() const {
    return average_power.watts() /
           static_cast<double>(layout.capacity_bits);
  }
};

/// Analytic report: hierarchy depth estimated from the mean cluster size
/// ((1+p)/2 for semi-flexible, p for fixed) unless `depth_override` gives
/// the real measured depth.
PpaReport analytic_report(const DesignPoint& point,
                          std::optional<std::size_t> depth_override = {},
                          const TechnologyParams& tech = tech16nm());

/// Report from a real solve's hardware activity and measured hierarchy
/// depth (AnnealResult::hw and ::hierarchy_depth — the PPA layer takes
/// the activity record rather than the solver result so it never depends
/// on the annealer).
PpaReport measured_report(const DesignPoint& point,
                          const hw::HardwareActivity& activity,
                          std::size_t hierarchy_depth,
                          const TechnologyParams& tech = tech16nm());

}  // namespace cim::ppa
