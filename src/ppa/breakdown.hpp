// Component-level decomposition of the macro models (NeuroSim-style).
//
// The aggregate area/energy models (area.hpp / energy.hpp) are calibrated
// to the paper's published anchors; this module splits them into the
// components of Fig. 5(c) — cell array, adder trees, decoders, switch
// matrix, MUX overhead — so design explorations can see *where* a p_max
// change spends its silicon. The split fractions are modelling choices
// (documented per field); the totals always equal the aggregate models.
#pragma once

#include "cim/array.hpp"
#include "cim/chip.hpp"
#include "ppa/area.hpp"
#include "ppa/tech.hpp"
#include "util/units.hpp"

namespace cim::ppa {

using util::Picojoule;
using util::SquareMicron;

struct AreaBreakdown {
  SquareMicron cell_array;    ///< 14T cells (6T SRAM + NOR + 2 TG)
  SquareMicron adder_trees;   ///< per-window-row reduction + shift-add
  SquareMicron write_drivers; ///< column write path
  SquareMicron decoders;      ///< row/MUX decode
  SquareMicron switch_matrix; ///< cell-enable switch matrix
  SquareMicron total() const {
    return cell_array + adder_trees + write_drivers + decoders +
           switch_matrix;
  }
  /// Fraction of the array that is storage (the paper's density argument:
  /// digital CIM peripheral overhead stays modest).
  double cell_fraction() const {
    const SquareMicron sum = total();
    return sum.um2() > 0.0 ? cell_array / sum : 0.0;
  }
};

/// Decomposes one array's footprint. Row peripherals split 60/40 into
/// decoders / switch matrix; column peripherals 80/20 into adder trees /
/// write drivers (VLSI-typical shares for this periphery mix).
AreaBreakdown array_area_breakdown(const hw::ArrayGeometry& geometry,
                                   const TechnologyParams& tech =
                                       tech16nm());

struct MacEnergyBreakdown {
  Picojoule nor_products;  ///< one 4T-NOR evaluation per bit cell
  Picojoule adder_tree;    ///< reduction + shift-and-add bit ops
  Picojoule mux;           ///< cell/window MUX switching
  Picojoule total() const { return nor_products + adder_tree + mux; }
};

/// Decomposes one window-column MAC. NOR products and adder ops split the
/// aggregate bit-op energy ~50/50 (equal counts); the MUX share is the
/// two transmission gates per accessed cell, folded into ~6% of total.
MacEnergyBreakdown mac_energy_breakdown(std::size_t window_rows,
                                        unsigned weight_bits,
                                        const TechnologyParams& tech =
                                            tech16nm());

}  // namespace cim::ppa
