// Component-level decomposition of the macro models (NeuroSim-style).
//
// The aggregate area/energy models (area.hpp / energy.hpp) are calibrated
// to the paper's published anchors; this module splits them into the
// components of Fig. 5(c) — cell array, adder trees, decoders, switch
// matrix, MUX overhead — so design explorations can see *where* a p_max
// change spends its silicon. The split fractions are modelling choices
// (documented per field); the totals always equal the aggregate models.
#pragma once

#include "cim/array.hpp"
#include "cim/chip.hpp"
#include "ppa/area.hpp"
#include "ppa/tech.hpp"

namespace cim::ppa {

struct AreaBreakdown {
  double cell_array_um2 = 0.0;    ///< 14T cells (6T SRAM + NOR + 2 TG)
  double adder_trees_um2 = 0.0;   ///< per-window-row reduction + shift-add
  double write_drivers_um2 = 0.0; ///< column write path
  double decoders_um2 = 0.0;      ///< row/MUX decode
  double switch_matrix_um2 = 0.0; ///< cell-enable switch matrix
  double total_um2() const {
    return cell_array_um2 + adder_trees_um2 + write_drivers_um2 +
           decoders_um2 + switch_matrix_um2;
  }
  /// Fraction of the array that is storage (the paper's density argument:
  /// digital CIM peripheral overhead stays modest).
  double cell_fraction() const {
    const double total = total_um2();
    return total > 0.0 ? cell_array_um2 / total : 0.0;
  }
};

/// Decomposes one array's footprint. Row peripherals split 60/40 into
/// decoders / switch matrix; column peripherals 80/20 into adder trees /
/// write drivers (VLSI-typical shares for this periphery mix).
AreaBreakdown array_area_breakdown(const hw::ArrayGeometry& geometry,
                                   const TechnologyParams& tech =
                                       tech16nm());

struct MacEnergyBreakdown {
  double nor_products_j = 0.0;  ///< one 4T-NOR evaluation per bit cell
  double adder_tree_j = 0.0;    ///< reduction + shift-and-add bit ops
  double mux_j = 0.0;           ///< cell/window MUX switching
  double total_j() const {
    return nor_products_j + adder_tree_j + mux_j;
  }
};

/// Decomposes one window-column MAC. NOR products and adder ops split the
/// aggregate bit-op energy ~50/50 (equal counts); the MUX share is the
/// two transmission gates per accessed cell, folded into ~6% of total.
MacEnergyBreakdown mac_energy_breakdown(std::size_t window_rows,
                                        unsigned weight_bits,
                                        const TechnologyParams& tech =
                                            tech16nm());

}  // namespace cim::ppa
