#include "ppa/floorplan.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cim::ppa {

Floorplan plan_floorplan(const hw::ChipLayout& layout,
                         const hw::ArrayGeometry& geometry,
                         const FloorplanOptions& options,
                         const TechnologyParams& tech) {
  CIM_REQUIRE(layout.arrays >= 1, "floorplan needs at least one array");
  const ArrayArea array = array_area(geometry, tech);

  Floorplan plan;
  // Near-square grid in physical dimensions: pick the column count that
  // brings width/height closest to 1 given the array aspect ratio.
  const double n = static_cast<double>(layout.arrays);
  const double pitch_w = array.width_um + options.channel_um;
  const double pitch_h = array.height_um + options.channel_um;
  const double ideal_cols = std::sqrt(n * pitch_h / pitch_w);
  plan.grid_cols = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(ideal_cols)));
  plan.grid_cols = std::min(plan.grid_cols, layout.arrays);
  plan.grid_rows = (layout.arrays + plan.grid_cols - 1) / plan.grid_cols;

  plan.width_um = static_cast<double>(plan.grid_cols) * pitch_w;
  plan.height_um = static_cast<double>(plan.grid_rows) * pitch_h;
  plan.aspect_ratio = plan.width_um / plan.height_um;
  plan.array_area = n * array.area();
  plan.channel_area = plan.area() - plan.array_area;

  // H-tree trunk: each binary level halves the span; total wire ≈
  // Σ_levels 2^level · (span / 2^ceil(level/2)) ≈ perimeter-scale for a
  // balanced tree. Use the standard estimate: total ≈ 1.5 · (W + H) ·
  // sqrt(#arrays) / 2.
  plan.htree_wire_um = 0.75 * (plan.width_um + plan.height_um) *
                       std::sqrt(n);
  return plan;
}

}  // namespace cim::ppa
