#include "ppa/breakdown.hpp"

#include "ppa/energy.hpp"

namespace cim::ppa {

AreaBreakdown array_area_breakdown(const hw::ArrayGeometry& geometry,
                                   const TechnologyParams& tech) {
  const ArrayArea total = array_area(geometry, tech);
  AreaBreakdown breakdown;

  // Cell region: rows × height by bit-columns × width.
  const double cell_h =
      static_cast<double>(geometry.cell_rows()) * tech.cell_height_um;
  const double cell_w =
      static_cast<double>(geometry.cell_cols()) * tech.cell_width_um;
  breakdown.cell_array_um2 = cell_h * cell_w;

  // Row peripherals span the full width; column peripherals the cell
  // height (the corner is attributed to the row strip, matching how the
  // aggregate model composes height × width).
  const double row_strip = tech.row_periph_um * total.width_um;
  const double col_strip = tech.col_periph_um * cell_h;
  breakdown.decoders_um2 = 0.6 * row_strip;
  breakdown.switch_matrix_um2 = 0.4 * row_strip;
  breakdown.adder_trees_um2 = 0.8 * col_strip;
  breakdown.write_drivers_um2 = 0.2 * col_strip;
  return breakdown;
}

MacEnergyBreakdown mac_energy_breakdown(std::size_t window_rows,
                                        unsigned weight_bits,
                                        const TechnologyParams& tech) {
  const double total = mac_energy_j(window_rows, weight_bits, tech);
  MacEnergyBreakdown breakdown;
  breakdown.mux_j = 0.06 * total;
  const double rest = total - breakdown.mux_j;
  breakdown.nor_products_j = 0.5 * rest;
  breakdown.adder_tree_j = 0.5 * rest;
  return breakdown;
}

}  // namespace cim::ppa
