#include "ppa/breakdown.hpp"

#include "ppa/energy.hpp"

namespace cim::ppa {

AreaBreakdown array_area_breakdown(const hw::ArrayGeometry& geometry,
                                   const TechnologyParams& tech) {
  const ArrayArea total = array_area(geometry, tech);
  AreaBreakdown breakdown;

  // Cell region: rows × height by bit-columns × width.
  const double cell_h =
      static_cast<double>(geometry.cell_rows()) * tech.cell_height_um;
  const double cell_w =
      static_cast<double>(geometry.cell_cols()) * tech.cell_width_um;
  breakdown.cell_array = SquareMicron(cell_h * cell_w);

  // Row peripherals span the full width; column peripherals the cell
  // height (the corner is attributed to the row strip, matching how the
  // aggregate model composes height × width).
  const SquareMicron row_strip(tech.row_periph_um * total.width_um);
  const SquareMicron col_strip(tech.col_periph_um * cell_h);
  breakdown.decoders = 0.6 * row_strip;
  breakdown.switch_matrix = 0.4 * row_strip;
  breakdown.adder_trees = 0.8 * col_strip;
  breakdown.write_drivers = 0.2 * col_strip;
  return breakdown;
}

MacEnergyBreakdown mac_energy_breakdown(std::size_t window_rows,
                                        unsigned weight_bits,
                                        const TechnologyParams& tech) {
  const Picojoule total = mac_energy(window_rows, weight_bits, tech);
  MacEnergyBreakdown breakdown;
  breakdown.mux = 0.06 * total;
  const Picojoule rest = total - breakdown.mux;
  breakdown.nor_products = 0.5 * rest;
  breakdown.adder_tree = 0.5 * rest;
  return breakdown;
}

}  // namespace cim::ppa
