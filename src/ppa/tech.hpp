// 16/14 nm FinFET technology constants for the PPA macro models.
//
// The paper derives its PPA from NeuroSim-style macro models; we use the
// same structure with constants *fitted to the paper's own published
// anchors* (DESIGN.md §6):
//
//   * cell pitch and peripheral overheads solve the three array areas of
//     Table II exactly (≤ 2.3 % residual):
//       p_max=2: 40×64  cells → 57×55 µm
//       p_max=3: 75×144 cells → 102×98 µm
//       p_max=4: 120×256 cells → 161×162 µm
//     giving cell 1.286 µm (H) × 0.5375 µm (W), row peripherals 5.6 µm,
//     column peripherals (adder trees) 20.6 µm;
//   * the per-bit compute energy is fitted to the 433 mW chip power of
//     pla85900 at p_max=3 (Table III) at the 1 GHz update clock;
//   * the 14T cell is ~2.3× a 6T SRAM footprint (6T+NOR+2 TG, Fig. 5(b)).
#pragma once

namespace cim::ppa {

struct TechnologyParams {
  // --- geometry (µm), fitted to Table II ---
  double cell_height_um = 1.286;   ///< 14T cell height (double-height routing)
  double cell_width_um = 0.5375;   ///< 14T cell width per bit column
  double row_periph_um = 5.6;      ///< decoder + switch matrix (vertical)
  double col_periph_um = 20.6;     ///< adder trees + write drivers (horizontal)
  double routing_overhead = 0.018; ///< chip-level interconnect fraction

  // --- timing ---
  double clock_ghz = 1.0;          ///< update clock
  double cycles_per_mac = 1.0;     ///< one window MAC per cycle
  double cycles_per_write_row = 1.0;

  // --- energy (fJ), fitted to the 433 mW anchor ---
  double bit_op_fj = 0.50;         ///< NOR product or 1-bit adder op
  double write_bit_fj = 0.55;      ///< SRAM bit write (incl. drivers)
  double transfer_bit_fj = 0.08;   ///< inter-array edge-bit move
  double leakage_w_per_mb = 1.0e-4;///< standby leakage per Mb of SRAM
};

/// Default 16 nm parameters (see file comment).
const TechnologyParams& tech16nm();

}  // namespace cim::ppa
