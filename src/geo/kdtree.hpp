// Static 2-D kd-tree over a point set. Used for k-nearest-neighbour
// candidate lists (2-opt / Or-opt) and for the spatial clustering passes.
// The tree is built once over an immutable point array; queries support
// soft-deletion via an "active" mask so greedy matching algorithms can
// remove points as they are consumed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.hpp"

namespace cim::geo {

class KdTree {
 public:
  /// Builds a balanced tree over `points` (copied). O(n log n).
  explicit KdTree(std::span<const Point> points);

  std::size_t size() const { return points_.size(); }

  /// Index of the nearest active point to `query`, excluding `exclude`
  /// (pass npos to exclude nothing). Returns npos if no active point exists.
  std::size_t nearest(Point query, std::size_t exclude = npos) const;

  /// Indices of the k nearest active points to `query` (ascending distance),
  /// excluding `exclude`.
  std::vector<std::size_t> nearest_k(Point query, std::size_t k,
                                     std::size_t exclude = npos) const;

  /// All active points within `radius` of `query`.
  std::vector<std::size_t> within_radius(Point query, double radius) const;

  /// Soft-deletes / restores a point for subsequent queries.
  void set_active(std::size_t index, bool active);
  bool is_active(std::size_t index) const { return active_[index]; }
  std::size_t active_count() const { return active_count_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  struct Node {
    // Leaf nodes hold [begin, end) into order_; internal nodes split.
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    float split = 0.0F;
    std::uint8_t axis = 0;
    BoundingBox box;
    bool leaf() const { return left < 0; }
  };

  std::int32_t build(std::uint32_t begin, std::uint32_t end);

  std::vector<Point> points_;
  std::vector<std::uint32_t> order_;  // permutation into points_, by leaf
  std::vector<Node> nodes_;
  std::vector<char> active_;
  std::size_t active_count_ = 0;
  std::int32_t root_ = -1;

  static constexpr std::uint32_t kLeafSize = 16;
};

}  // namespace cim::geo
