// 2-D geometry primitives for TSP instances.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace cim::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend Point operator/(Point a, double s) { return {a.x / s, a.y / s}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

inline double squared_distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double euclidean(Point a, Point b) {
  return std::sqrt(squared_distance(a, b));
}

/// Axis-aligned bounding box.
struct BoundingBox {
  Point lo{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Point hi{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  void expand(Point p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  bool empty() const { return lo.x > hi.x; }
  double width() const { return empty() ? 0.0 : hi.x - lo.x; }
  double height() const { return empty() ? 0.0 : hi.y - lo.y; }
  Point center() const { return (lo + hi) / 2.0; }

  /// Squared distance from p to the box (0 when inside).
  double squared_distance_to(Point p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return dx * dx + dy * dy;
  }
};

inline BoundingBox bounding_box(std::span<const Point> points) {
  BoundingBox box;
  for (const Point p : points) box.expand(p);
  return box;
}

/// Centroid of a non-empty point set.
inline Point centroid(std::span<const Point> points) {
  Point sum{};
  for (const Point p : points) sum = sum + p;
  return sum / static_cast<double>(points.size());
}

}  // namespace cim::geo
