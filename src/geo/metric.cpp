#include "geo/metric.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cim::geo {

namespace {

constexpr double kPi = 3.141592653589793;
constexpr double kEarthRadius = 6378.388;  // TSPLIB's RRR constant

/// TSPLIB GEO coordinates are DDD.MM (degrees and minutes).
double geo_radians(double coordinate) {
  const double degrees = std::trunc(coordinate);
  const double minutes = coordinate - degrees;
  return kPi * (degrees + 5.0 * minutes / 3.0) / 180.0;
}

long long geo_distance(Point a, Point b) {
  const double lat_a = geo_radians(a.x);
  const double lon_a = geo_radians(a.y);
  const double lat_b = geo_radians(b.x);
  const double lon_b = geo_radians(b.y);
  const double q1 = std::cos(lon_a - lon_b);
  const double q2 = std::cos(lat_a - lat_b);
  const double q3 = std::cos(lat_a + lat_b);
  const double arg = 0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3);
  return static_cast<long long>(
      kEarthRadius * std::acos(std::clamp(arg, -1.0, 1.0)) + 1.0);
}

long long att_distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double rij = std::sqrt((dx * dx + dy * dy) / 10.0);
  const auto tij = static_cast<long long>(std::lround(rij));
  return (static_cast<double>(tij) < rij) ? tij + 1 : tij;
}

}  // namespace

Metric parse_metric(const std::string& name) {
  if (name == "EUC_2D") return Metric::kEuc2D;
  if (name == "CEIL_2D") return Metric::kCeil2D;
  if (name == "ATT") return Metric::kAtt;
  if (name == "GEO") return Metric::kGeo;
  if (name == "MAN_2D") return Metric::kMan2D;
  if (name == "MAX_2D") return Metric::kMax2D;
  if (name == "EXPLICIT") return Metric::kExplicit;
  throw ParseError("unsupported TSPLIB EDGE_WEIGHT_TYPE: " + name);
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kEuc2D:
      return "EUC_2D";
    case Metric::kCeil2D:
      return "CEIL_2D";
    case Metric::kAtt:
      return "ATT";
    case Metric::kGeo:
      return "GEO";
    case Metric::kMan2D:
      return "MAN_2D";
    case Metric::kMax2D:
      return "MAX_2D";
    case Metric::kExplicit:
      return "EXPLICIT";
  }
  return "?";
}

long long tsplib_distance(Metric metric, Point a, Point b) {
  switch (metric) {
    case Metric::kEuc2D:
      return std::llround(euclidean(a, b));
    case Metric::kCeil2D:
      return static_cast<long long>(std::ceil(euclidean(a, b)));
    case Metric::kAtt:
      return att_distance(a, b);
    case Metric::kGeo:
      return geo_distance(a, b);
    case Metric::kMan2D:
      return std::llround(std::abs(a.x - b.x) + std::abs(a.y - b.y));
    case Metric::kMax2D:
      return std::llround(std::max(std::abs(a.x - b.x), std::abs(a.y - b.y)));
    case Metric::kExplicit:
      break;
  }
  throw InvariantError("tsplib_distance called with EXPLICIT metric");
}

double continuous_distance(Metric metric, Point a, Point b) {
  switch (metric) {
    case Metric::kEuc2D:
    case Metric::kCeil2D:
      return euclidean(a, b);
    case Metric::kAtt:
      return std::sqrt(squared_distance(a, b) / 10.0);
    case Metric::kGeo:
      return static_cast<double>(tsplib_distance(Metric::kGeo, a, b));
    case Metric::kMan2D:
      return std::abs(a.x - b.x) + std::abs(a.y - b.y);
    case Metric::kMax2D:
      return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
    case Metric::kExplicit:
      break;
  }
  throw InvariantError("continuous_distance called with EXPLICIT metric");
}

}  // namespace cim::geo
