#include "geo/kdtree.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace cim::geo {

KdTree::KdTree(std::span<const Point> points)
    : points_(points.begin(), points.end()),
      order_(points_.size()),
      active_(points_.size(), 1),
      active_count_(points_.size()) {
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!points_.empty()) {
    nodes_.reserve(2 * points_.size() / kLeafSize + 2);
    root_ = build(0, static_cast<std::uint32_t>(order_.size()));
  }
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  for (std::uint32_t i = begin; i < end; ++i) {
    node.box.expand(points_[order_[i]]);
  }
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (end - begin > kLeafSize) {
    const std::uint8_t axis =
        node.box.width() >= node.box.height() ? 0 : 1;
    const std::uint32_t mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return axis == 0 ? points_[a].x < points_[b].x
                                        : points_[a].y < points_[b].y;
                     });
    const Point median = points_[order_[mid]];
    const std::int32_t left = build(begin, mid);
    const std::int32_t right = build(mid, end);
    nodes_[static_cast<std::size_t>(index)].left = left;
    nodes_[static_cast<std::size_t>(index)].right = right;
    nodes_[static_cast<std::size_t>(index)].axis = axis;
    nodes_[static_cast<std::size_t>(index)].split =
        static_cast<float>(axis == 0 ? median.x : median.y);
  }
  return index;
}

namespace {
/// Max-heap entry for k-NN search.
struct HeapItem {
  double dist2;
  std::size_t index;
  bool operator<(const HeapItem& other) const { return dist2 < other.dist2; }
};
}  // namespace

std::size_t KdTree::nearest(Point query, std::size_t exclude) const {
  const auto result = nearest_k(query, 1, exclude);
  return result.empty() ? npos : result.front();
}

std::vector<std::size_t> KdTree::nearest_k(Point query, std::size_t k,
                                           std::size_t exclude) const {
  std::vector<std::size_t> out;
  if (root_ < 0 || k == 0) return out;

  std::priority_queue<HeapItem> best;  // max-heap of current k best
  const auto worst = [&] {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().dist2;
  };

  // Explicit stack of node indices, pruned by box distance.
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.box.empty() ||
        node.box.squared_distance_to(query) > worst()) {
      continue;
    }
    if (node.leaf()) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::size_t p = order_[i];
        if (!active_[p] || p == exclude) continue;
        const double d2 = squared_distance(points_[p], query);
        if (d2 < worst()) {
          best.push({d2, p});
          if (best.size() > k) best.pop();
        }
      }
      continue;
    }
    // Descend the nearer child last so it is popped first.
    const double qcoord = node.axis == 0 ? query.x : query.y;
    const bool left_first = qcoord < static_cast<double>(node.split);
    stack.push_back(left_first ? node.right : node.left);
    stack.push_back(left_first ? node.left : node.right);
  }

  out.resize(best.size());
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    *it = best.top().index;
    best.pop();
  }
  return out;
}

std::vector<std::size_t> KdTree::within_radius(Point query,
                                               double radius) const {
  std::vector<std::size_t> out;
  if (root_ < 0) return out;
  const double r2 = radius * radius;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.box.empty() || node.box.squared_distance_to(query) > r2) {
      continue;
    }
    if (node.leaf()) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::size_t p = order_[i];
        if (!active_[p]) continue;
        if (squared_distance(points_[p], query) <= r2) out.push_back(p);
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  return out;
}

void KdTree::set_active(std::size_t index, bool active) {
  CIM_ASSERT(index < active_.size());
  if (static_cast<bool>(active_[index]) == active) return;
  active_[index] = active ? 1 : 0;
  active_count_ += active ? 1 : static_cast<std::size_t>(-1);
}

}  // namespace cim::geo
