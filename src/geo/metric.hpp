// TSPLIB edge-weight metrics. These follow Reinelt's TSPLIB 95 definitions
// exactly (integer rounding rules included), so tours scored here are
// comparable with published best-known lengths.
#pragma once

#include <string>

#include "geo/point.hpp"

namespace cim::geo {

enum class Metric {
  kEuc2D,   ///< round(sqrt(dx^2+dy^2))
  kCeil2D,  ///< ceil(sqrt(dx^2+dy^2))
  kAtt,     ///< pseudo-Euclidean (TSPLIB att instances)
  kGeo,     ///< geographical distance on the idealised Earth
  kMan2D,   ///< rounded Manhattan distance
  kMax2D,   ///< rounded Chebyshev distance
  kExplicit ///< distances come from an explicit matrix, not coordinates
};

/// Parses a TSPLIB EDGE_WEIGHT_TYPE string; throws cim::ParseError for
/// unsupported types.
Metric parse_metric(const std::string& name);

/// TSPLIB keyword for a metric (inverse of parse_metric).
std::string metric_name(Metric metric);

/// TSPLIB integer distance between two nodes under `metric`.
/// Precondition: metric != kExplicit.
long long tsplib_distance(Metric metric, Point a, Point b);

/// Continuous (unrounded) distance used for clustering geometry.
double continuous_distance(Metric metric, Point a, Point b);

}  // namespace cim::geo
