// Replica ensemble (related-work extension, §VI).
//
// Amorphica [25] and the PBM baseline [5] run multiple annealer replicas
// and keep the best outcome; replicas map naturally onto this design
// because each MB-scale chip region can anneal an independent copy. The
// ensemble runs R independently seeded solves (optionally on host
// threads) and reports the best tour plus the spread — the spread is also
// a useful robustness metric for the stochastic hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/clustered_annealer.hpp"

namespace cim::anneal {

struct EnsembleConfig {
  AnnealerConfig base;
  std::size_t replicas = 4;
  bool use_threads = true;  ///< solve replicas on the shared thread pool
  /// Maximum replicas in flight at once. 0 (default) caps at the shared
  /// pool's width, so replicas ≫ cores queues instead of spawning one OS
  /// thread per replica; 1 degenerates to a serial solve. Replica seeds
  /// derive from the replica index alone, so the cap never changes
  /// results.
  std::size_t workers = 0;
};

struct EnsembleResult {
  AnnealResult best;
  std::size_t best_replica = 0;
  std::vector<long long> replica_lengths;

  long long worst_length() const;
  double mean_length() const;
};

class ReplicaEnsemble {
 public:
  explicit ReplicaEnsemble(EnsembleConfig config);

  EnsembleResult solve(const tsp::Instance& instance) const;

 private:
  EnsembleConfig config_;
};

}  // namespace cim::anneal
