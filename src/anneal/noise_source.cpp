#include "anneal/noise_source.hpp"

#include <cmath>

namespace cim::anneal {

const char* noise_mode_name(NoiseMode mode) {
  switch (mode) {
    case NoiseMode::kSramWeight:
      return "sram-weight";
    case NoiseMode::kSramSpin:
      return "sram-spin";
    case NoiseMode::kLfsr:
      return "lfsr";
    case NoiseMode::kNone:
      return "none";
  }
  return "?";
}

double weight_noise_sigma(const noise::SramCellModel& model,
                          const noise::SchedulePhase& phase) {
  if (phase.noisy_lsbs == 0) return 0.0;
  const double rate = model.expected_error_rate(phase.vdd);
  double var = 0.0;
  for (unsigned b = 0; b < phase.noisy_lsbs; ++b) {
    const double magnitude = static_cast<double>(1U << b);
    var += magnitude * magnitude * rate * (1.0 - rate);
  }
  return std::sqrt(var);
}

double equivalent_temperature(const noise::SramCellModel& model,
                              const noise::SchedulePhase& phase) {
  // A swap compares (2 MACs) − (2 MACs); each local energy reads ~2
  // relevant weights, so ~8 independently corrupted weights contribute.
  const double sigma_w = weight_noise_sigma(model, phase);
  return std::sqrt(8.0) * sigma_w;
}

bool filter_spin_bit(const noise::SramCellModel& model,
                     std::uint64_t spin_cell_id,
                     const noise::SchedulePhase& phase, bool bit) {
  if (phase.noisy_lsbs == 0) return bit;
  return model.settled_value(spin_cell_id, phase.epoch, phase.vdd, bit);
}

}  // namespace cim::anneal
