// The clustered digital-CIM Ising annealer (§III + §IV + §V).
//
// Pipeline per solve:
//   1. hierarchical clustering of the instance (cluster::Hierarchy);
//   2. the top level's super-clusters are ordered into a ring;
//   3. hierarchical annealing descends level-by-level: at each level every
//      cluster owns one compact weight window (Fig. 3(c)) holding the
//      8-bit quantised distances between its members and the boundary
//      members of its ring neighbours; the cluster's member order is
//      annealed with PBM order swaps whose energies are the window-column
//      MACs (Fig. 5(a): two MACs before the swap, two after, compare);
//   4. weights are periodically written back while the pseudo-read supply
//      rises and the noisy-LSB count falls (noise::AnnealSchedule), so the
//      SRAM-induced weight noise anneals away;
//   5. ring-non-adjacent clusters update in parallel (chromatic Gibbs):
//      odd and even ring positions alternate cycles — an odd-length ring
//      needs a third phase for its last cluster;
//   6. after level 0 the member ring *is* the city tour.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anneal/kernel_config.hpp"
#include "anneal/noise_source.hpp"
#include "cluster/hierarchy.hpp"
#include "cim/activity.hpp"
#include "cim/dataflow.hpp"
#include "cim/storage.hpp"
#include "cim/window.hpp"
#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"
#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace cim::anneal {

enum class BackendKind { kFast, kBitLevel };

struct AnnealerConfig {
  cluster::Options clustering;
  noise::AnnealSchedule::Params schedule;
  noise::SramNoiseParams sram;
  NoiseMode noise = NoiseMode::kSramWeight;
  BackendKind backend = BackendKind::kFast;
  bool chromatic_parallel = true;  ///< false → sequential Gibbs (ablation)
  /// Incremental sparse swap kernel (default): every 4-MAC swap iterates
  /// only the p + 2 set input rows, tracked per slot and updated in place
  /// on accept/revert. false keeps the dense rebuild-and-scan baseline —
  /// bit-identical results and hardware counters, kept for the ablation
  /// and the swap-kernel micro-bench.
  bool sparse_swap_kernel = true;
  /// >1 updates same-colour slots of each chromatic phase on up to this
  /// many tasks of the persistent shared util::ThreadPool (no thread is
  /// ever created inside the epoch loop). Deterministic for a given seed
  /// and independent of the task/worker count (per-slot RNG streams
  /// derived from the level seed), but the streams differ from the
  /// single-threaded shared-stream sequence, so results match across
  /// thread counts > 1, not with 1. Requires chromatic_parallel and
  /// sparse_swap_kernel.
  std::uint32_t color_threads = 1;
  /// Bit-sliced packed swap kernel (DESIGN.md §14): spin/boundary inputs
  /// are kept as packed 64-cell words (structure-of-arrays arena) and the
  /// 4 MACs per swap go through WeightStorage::mac_packed — one word of
  /// NOR products per popcount. Bit-identical to the scalar sparse kernel
  /// (values, noise evolution, HardwareActivity counters), which stays as
  /// the determinism oracle; requires sparse_swap_kernel. Defaults to the
  /// CIMANNEAL_VECTOR_KERNEL env flag so CI can force either path.
  bool vector_kernel = default_vector_kernel();
  /// Per-window partial-sum memoization (DESIGN.md §16): each slot keeps
  /// the last MAC sum per column stamped with an input-state generation,
  /// so a repeated (column, input) pair — common during rejection streaks,
  /// where the reverted spin state recurs — returns the remembered sum and
  /// charges the hardware counters without re-reducing. Bit-identical to
  /// the unmemoized sparse/packed kernels (values, noise evolution,
  /// StorageCounters), which stay the oracle; the dense ablation kernel
  /// ignores it. Defaults from CIMANNEAL_MEMOIZE (unset → on); effective
  /// only with sparse_swap_kernel.
  bool memoize_partial_sums = default_memoize();
  std::uint32_t weight_bits = 8;
  std::uint64_t seed = 1;
  /// Optional warm start (src/store): a full city tour from a previous
  /// solve of the same (or a perturbed) instance. When non-empty it must
  /// be a valid permutation of the instance's cities; the top ring and
  /// every slot's initial member order then follow these ranks instead of
  /// the cold construction. Deterministic for a given order + seed, but
  /// not bit-identical to a cold solve.
  std::vector<tsp::CityId> initial_order;
  /// Record the level-0 ring length after every iteration (costly; for
  /// convergence studies on small instances).
  bool record_trace = false;
};

/// Per-level outcome.
struct LevelStats {
  std::size_t level = 0;         ///< hierarchy level index (depth-1 = top)
  std::size_t clusters = 0;
  std::size_t iterations = 0;
  std::size_t swaps_attempted = 0;
  std::size_t swaps_accepted = 0;
  /// Accepted swaps whose *exact* (noise-free, unquantised) energy delta
  /// was positive — uphill moves, only reachable through noise. The
  /// annealing-vs-greedy observable of §IV.B.
  std::size_t uphill_accepted = 0;
  std::size_t update_cycles = 0;  ///< hardware cycles (MAC + write-back)
  /// kSramSpin settle-cache behaviour: swap evaluations that reused the
  /// per-epoch settle pattern vs. rebuilds that re-derived it, and the
  /// individual settle decisions drawn while doing so (the dense-kernel
  /// ablation draws per input bit instead of per cache rebuild). For
  /// kLfsr, noise_draws counts Metropolis uniform draws. All three are 0
  /// for noise modes that draw nothing in the swap kernel.
  std::size_t settle_cache_hits = 0;
  std::size_t settle_cache_refreshes = 0;
  std::size_t noise_draws = 0;
  /// Partial-sum memo behaviour: swap-kernel MACs answered from the
  /// per-slot column memo vs. real reductions that (re)filled it. Both 0
  /// when memoization is off or the dense kernel runs.
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  /// Distance-cache behaviour of the exact-distance paths (window build,
  /// accepted-swap exact deltas, ring-length scoring) and the bytes of
  /// cache entries touched — the reuse-layer traffic observable.
  std::uint64_t dcache_hits = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t dcache_bytes = 0;
  double ring_length_after = 0.0; ///< expanded ring length (level metric)
};

/// Aggregated hardware activity for the PPA models. The struct lives in
/// the hw layer (cim/activity.hpp) so the PPA models can consume it
/// without depending on the annealer; the alias keeps annealer-side code
/// reading naturally.
using HardwareActivity = hw::HardwareActivity;

struct AnnealResult {
  tsp::Tour tour;
  long long length = 0;            ///< TSPLIB length of the final tour
  std::vector<LevelStats> levels;  ///< top level first
  HardwareActivity hw;
  std::vector<double> trace;       ///< optional per-iteration level-0 length
  std::size_t hierarchy_depth = 0;
  std::size_t max_cluster_size = 0;
};

/// Disjoint spin-register cell-id bases for the kSramSpin mode, one per
/// ring slot. Ids start at a high tag and stride by max(256, largest
/// window height): a window has rows() = p² + p_prev + p_next register
/// cells, which exceeds the historical 2⁸ stride once p ≥ 16, so striding
/// by 2⁸ would alias adjacent slots' error patterns. The 256 floor keeps
/// the established patterns of small windows unchanged. Exposed for
/// tests.
std::vector<std::uint64_t> spin_cell_bases(
    const std::vector<hw::WindowShape>& shapes);

class ClusteredAnnealer {
 public:
  explicit ClusteredAnnealer(AnnealerConfig config);

  const AnnealerConfig& config() const { return config_; }

  /// Solves the instance end-to-end. Thread-compatible: one solve per
  /// annealer instance at a time.
  AnnealResult solve(const tsp::Instance& instance) const;

 private:
  AnnealerConfig config_;
};

}  // namespace cim::anneal
