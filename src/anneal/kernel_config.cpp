#include "anneal/kernel_config.hpp"

#include "util/args.hpp"

namespace cim::anneal {

bool default_vector_kernel() {
  return util::Args::env_flag("CIMANNEAL_VECTOR_KERNEL");
}

}  // namespace cim::anneal
