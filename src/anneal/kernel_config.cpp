#include "anneal/kernel_config.hpp"

#include <cstdlib>

#include "util/args.hpp"

namespace cim::anneal {

bool default_vector_kernel() {
  return util::Args::env_flag("CIMANNEAL_VECTOR_KERNEL");
}

bool default_memoize() {
  const char* value = std::getenv("CIMANNEAL_MEMOIZE");
  if (value == nullptr || *value == '\0') return true;
  return util::Args::env_flag("CIMANNEAL_MEMOIZE");
}

}  // namespace cim::anneal
