// Swap-kernel selection shared by the annealers.
//
// Both the clustered TSP annealer and the Max-Cut annealer carry a
// `vector_kernel` knob choosing between the scalar kernels (the
// determinism oracle) and the bit-sliced packed path (cim/bitslice.hpp,
// DESIGN.md §14). The knob defaults from one environment flag so CI can
// force either path across every binary without touching configs.
#pragma once

namespace cim::anneal {

/// Default for the annealers' `vector_kernel` config field: the
/// CIMANNEAL_VECTOR_KERNEL environment flag (unset/empty/"0"/"false"/
/// "off"/"no" → scalar kernel).
bool default_vector_kernel();

/// Default for the annealers' `memoize_partial_sums` config field: the
/// CIMANNEAL_MEMOIZE environment flag, with the opposite resting state —
/// unset/empty means ON (memoization is the production path; CI forces
/// the recompute ablation with CIMANNEAL_MEMOIZE=0).
bool default_memoize();

}  // namespace cim::anneal
