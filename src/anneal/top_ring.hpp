// Top-of-hierarchy ring ordering: the hierarchical annealing (Fig. 4)
// starts by ordering the few super-clusters of the top level into a cycle.
// With top_size ≤ 7 the optimal cyclic order is found by enumeration;
// larger tops fall back to nearest-neighbour + 2-opt on the centroids.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace cim::anneal {

/// Returns indices 0..n-1 ordered into a short cycle over `centroids`.
std::vector<std::uint32_t> order_top_ring(
    const std::vector<geo::Point>& centroids);

/// Cycle length of `ring` over `centroids` (Euclidean).
double ring_length(const std::vector<geo::Point>& centroids,
                   const std::vector<std::uint32_t>& ring);

}  // namespace cim::anneal
