#include "anneal/clustered_annealer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "anneal/top_ring.hpp"
#include "cim/bitslice.hpp"
#include "cim/window.hpp"
#include "tsp/dist_cache.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace cim::anneal {

namespace telemetry = util::telemetry;

namespace {

using cluster::Hierarchy;
using noise::SchedulePhase;

/// One ring position during a level solve: a cluster, its members, its
/// compact weight window and its current member order.
struct Slot {
  std::vector<std::uint32_t> members;  ///< item ids one level below
  std::vector<geo::Point> points;      ///< member representative positions
  std::vector<std::uint32_t> perm;     ///< perm[order] = local member index
  std::unique_ptr<hw::WeightStorage> storage;
  hw::WindowShape shape;
  std::uint32_t prev = 0;
  std::uint32_t next = 0;
  std::uint8_t color = 0;
  std::uint64_t spin_cell_base = 0;  ///< register-cell ids for kSramSpin

  /// Sparse swap-kernel state: the p + 2 currently-set input rows (own
  /// spins at entries [0, p), then the predecessor and successor boundary
  /// rows) plus a dense 0/1 view of the same set. Maintained
  /// incrementally — a swap moves exactly two own entries, and the
  /// boundary entries follow the neighbours' perms.
  std::vector<std::uint32_t> active;
  std::vector<std::uint8_t> in_mask;

  /// Vector-kernel state (structure-of-arrays): the packed 64-cell view of
  /// in_mask lives in the solver's shared word arena at [packed_off,
  /// packed_off + packed_nwords) — every slot's spin plane in one
  /// contiguous allocation, cache-line padded so colour-parallel workers
  /// never share a line. Maintained bit-for-bit with in_mask by
  /// set_active_entry/init_active when the vector kernel is on.
  std::size_t packed_off = 0;
  std::uint32_t packed_nwords = 0;
  /// Packed kSramSpin settle cache (mirrors spin_drop/spin_add): the noisy
  /// packed input is (in & ~drop_words) | add_words, the word-parallel
  /// form of "drop written 1s, add settled-to-1 rows".
  std::vector<std::uint64_t> spin_drop_words;
  std::vector<std::uint64_t> spin_add_words;

  /// kSramSpin per-epoch noise cache: the error pattern is spatially
  /// fixed within an epoch, so the per-row settle outcomes are
  /// precomputed once per (slot, epoch) instead of per MAC input bit.
  /// spin_drop[r] — a written 1 reads as 0; spin_add — rows whose written
  /// 0 reads as 1.
  std::uint64_t spin_epoch = ~0ULL;
  std::vector<std::uint8_t> spin_drop;
  std::vector<std::uint32_t> spin_add;

  /// Partial-sum memo (DESIGN.md §16): memo_value[col] is the MAC of
  /// `col` under the input state identified by memo_stamp[col] ==
  /// input_gen. input_gen moves to a fresh value from the monotonic
  /// gen_counter whenever anything a MAC reads changes — an active-row
  /// entry, the spin settle cache, or the weights at write-back — and a
  /// rejected swap *restores* the pre-swap generation after reverting, so
  /// entries cached before the attempt stay valid across rejection
  /// streaks. A stamp of 0 never matches (generations start at 1).
  std::vector<std::int64_t> memo_value;
  std::vector<std::uint64_t> memo_stamp;
  std::uint64_t gen_counter = 1;
  std::uint64_t input_gen = 1;

  std::uint32_t p() const { return static_cast<std::uint32_t>(members.size()); }
};

/// Per-worker scratch buffers for attempt_swap (one per thread in the
/// colour-parallel mode, so workers never share mutable state).
struct SwapScratch {
  std::vector<std::uint8_t> input;   ///< dense input (legacy kernel)
  std::vector<std::uint32_t> rows;   ///< noisy row list (kSramSpin sparse)
  std::vector<std::uint64_t> words;  ///< noisy packed input (vector kernel)
  /// Per-worker distance cache for the accepted-swap exact deltas (level
  /// 0 only). Worker-owned, so the hot path never shares mutable state or
  /// touches an atomic; stats are flushed once per level.
  std::unique_ptr<tsp::DistanceCache> dcache;
};

/// Solves the member order of every cluster at one hierarchy level.
class LevelSolver {
 public:
  LevelSolver(const AnnealerConfig& config, const tsp::Instance& instance,
              const Hierarchy& hierarchy, std::size_t level,
              const std::vector<std::uint32_t>& ring,
              const noise::SramCellModel& cell_model,
              const noise::AnnealSchedule& schedule, util::Rng& rng,
              std::uint64_t epoch_base,
              const std::vector<std::uint64_t>* member_rank = nullptr)
      : config_(config),
        instance_(instance),
        hierarchy_(hierarchy),
        level_(level),
        cell_model_(cell_model),
        schedule_(schedule),
        rng_(rng),
        epoch_base_(epoch_base),
        member_rank_(member_rank),
        memoize_(config.memoize_partial_sums && config.sparse_swap_kernel) {
    if (level_ == 0) {
      // Level 0 asks for exact TSPLIB distances (sqrt + rounding) from the
      // window builder, the accepted-swap deltas and the ring scorer; the
      // serial cache covers the coordinating thread, workers carry their
      // own in SwapScratch.
      dcache_ = std::make_unique<tsp::DistanceCache>(instance_);
    }
    build_slots(ring);
    build_windows();
    if (config_.vector_kernel) {
      // Structure-of-arrays spin arena: one contiguous word allocation
      // holding every slot's packed input plane, each slot padded to an
      // 8-word (cache-line) boundary so colour-parallel workers writing
      // neighbouring slots never false-share.
      std::size_t off = 0;
      for (Slot& slot : slots_) {
        slot.packed_off = off;
        slot.packed_nwords = hw::packed_words(slot.shape.rows());
        off += (static_cast<std::size_t>(slot.packed_nwords) + 7U) & ~7ULL;
      }
      packed_arena_.assign(off, 0);
    }
    for (Slot& slot : slots_) init_active(slot);
    if (config_.color_threads > 1) {
      const std::uint64_t level_stream = util::stream_seed(
          util::hash_combine(config_.seed, 0xC0102ULL),
          static_cast<std::uint64_t>(level_));
      slot_rngs_.reserve(slots_.size());
      for (std::size_t r = 0; r < slots_.size(); ++r) {
        slot_rngs_.emplace_back(util::stream_seed(level_stream, r));
      }
    }
  }

  LevelStats run(HardwareActivity& hw, std::vector<double>* trace);

  /// Expanded ring: member item ids in final visiting order.
  std::vector<std::uint32_t> expanded_ring() const;

  /// Level metric: cyclic length over the expanded member sequence using
  /// exact (unquantised) distances.
  double exact_ring_length() const;

 private:
  void build_slots(const std::vector<std::uint32_t>& ring);
  void build_windows();

  geo::Point item_point(std::uint32_t item) const {
    if (level_ == 0) return instance_.coord(item);
    return hierarchy_.level(level_ - 1).clusters[item].centroid;
  }

  /// Exact member-to-member distance (TSPLIB integer metric at level 0,
  /// centroid Euclidean above). The level-0 metric goes through `cache`
  /// when one is supplied — the cache returns the exact instance values,
  /// so cached and uncached runs are bit-identical.
  double exact_distance(const geo::Point& a, const geo::Point& b,
                        std::uint32_t item_a, std::uint32_t item_b,
                        tsp::DistanceCache* cache) const {
    if (level_ == 0) {
      if (cache != nullptr) {
        return static_cast<double>(cache->distance(item_a, item_b));
      }
      return static_cast<double>(instance_.distance(item_a, item_b));
    }
    return geo::euclidean(a, b);
  }

  /// Serial-path overload: routes through the coordinating thread's cache.
  /// Only the window builder, the ring scorer and other single-threaded
  /// callers may use it — workers pass their own cache explicitly.
  double exact_distance(const geo::Point& a, const geo::Point& b,
                        std::uint32_t item_a, std::uint32_t item_b) const {
    return exact_distance(a, b, item_a, item_b, dcache_.get());
  }

  std::uint8_t quantise(double d) const {
    if (scale_ <= 0.0) return 0;
    const double q = std::round(d * scale_);
    const double max_code =
        static_cast<double>((1U << config_.weight_bits) - 1U);
    return static_cast<std::uint8_t>(std::clamp(q, 0.0, max_code));
  }

  /// Builds the input bit-vector of `slot` from the current permutations
  /// (legacy dense kernel; the reference the sparse path must match).
  void assemble_input(const Slot& slot, std::vector<std::uint8_t>& input,
                      const SchedulePhase& phase) const;

  /// Initialises the persistent active-row list of `slot` from its perm.
  void init_active(Slot& slot);
  /// Points active[idx] at `row`, keeping the dense mask in sync.
  void set_active_entry(Slot& slot, std::uint32_t idx, std::uint32_t row);
  /// Re-derives the two boundary entries from the neighbours' perms (they
  /// change when a neighbour accepts a swap at its first/last order — or,
  /// on a single-slot ring, when this slot does).
  void refresh_boundary(Slot& slot);
  /// Rebuilds the kSramSpin settle cache when the epoch changed; tallies
  /// cache hits/refreshes and the settle decisions drawn on a rebuild.
  void refresh_spin_cache(Slot& slot, const SchedulePhase& phase,
                          LevelStats& stats);
  /// The set input rows after spin noise: the clean active list in every
  /// mode but kSramSpin, where cached per-epoch settle outcomes drop
  /// written-1 rows and add settled-to-1 rows.
  std::span<const std::uint32_t> noisy_input_rows(
      const Slot& slot, std::vector<std::uint32_t>& scratch) const;

  /// The slot's packed input plane inside the shared arena.
  std::span<std::uint64_t> slot_words(const Slot& slot) {
    return {packed_arena_.data() + slot.packed_off, slot.packed_nwords};
  }
  std::span<const std::uint64_t> slot_words(const Slot& slot) const {
    return {packed_arena_.data() + slot.packed_off, slot.packed_nwords};
  }
  /// Packed counterpart of noisy_input_rows: the clean packed plane in
  /// every mode but kSramSpin, where the cached per-epoch settle masks
  /// apply word-parallel as (in & ~drop) | add — the same set of rows the
  /// scalar oracle assembles one entry at a time.
  std::span<const std::uint64_t> noisy_input_words(
      const Slot& slot, std::vector<std::uint64_t>& scratch) const;

  bool attempt_swap(Slot& slot, const SchedulePhase& phase,
                    LevelStats& stats, HardwareActivity& hw, util::Rng& rng,
                    SwapScratch& scratch);

  /// Updates all slots of one colour on up to config_.color_threads pool
  /// tasks (the persistent shared ThreadPool — no threads are created in
  /// the epoch loop).
  void run_color_parallel(std::uint8_t color, const SchedulePhase& phase,
                          LevelStats& stats, HardwareActivity& hw);

  /// Exact (noise-free, unquantised) energy delta of the swap (i, j) that
  /// has already been applied to slot.perm. `cache` is the caller's
  /// distance cache (per-worker in the colour-parallel mode), or nullptr.
  double exact_swap_delta_applied(Slot& slot, std::uint32_t i,
                                  std::uint32_t j,
                                  tsp::DistanceCache* cache) const;

  const AnnealerConfig& config_;
  const tsp::Instance& instance_;
  const Hierarchy& hierarchy_;
  std::size_t level_;
  const noise::SramCellModel& cell_model_;
  const noise::AnnealSchedule& schedule_;
  util::Rng& rng_;
  std::uint64_t epoch_base_;
  /// Warm-start ranks (per item id one level below `level_`), or nullptr
  /// for the cold identity order. Slot perms initialise sorted by rank.
  const std::vector<std::uint64_t>* member_rank_;
  const bool memoize_;  ///< partial-sum memo active for the swap kernel

  std::vector<Slot> slots_;
  /// Vector-kernel spin arena (structure-of-arrays): every slot's packed
  /// input plane, cache-line padded. Empty when vector_kernel is off.
  std::vector<std::uint64_t> packed_arena_;
  std::uint8_t color_count_ = 1;
  double scale_ = 0.0;  ///< quantisation: weight = distance * scale_
  SwapScratch scratch_;  ///< single-threaded scratch
  /// Per-slot RNG streams (colour-parallel mode only): derived statelessly
  /// from the level seed so results are independent of worker count and
  /// execution order within a colour phase.
  std::vector<util::Rng> slot_rngs_;
  std::vector<std::size_t> color_slots_;  ///< scratch for one colour's slots
  /// Per-task accumulators for the colour-parallel mode, sized once and
  /// reused across colours, epochs and levels — the epoch loop performs
  /// no allocation and no thread creation.
  std::vector<LevelStats> worker_stats_;
  std::vector<HardwareActivity> worker_hw_;
  std::vector<SwapScratch> worker_scratch_;
  /// Coordinating thread's distance cache (level 0 only): window build,
  /// ring scoring and the single-threaded swap path. Mutable because the
  /// const scoring paths (exact_ring_length) still warm it.
  mutable std::unique_ptr<tsp::DistanceCache> dcache_;
};

void LevelSolver::build_slots(const std::vector<std::uint32_t>& ring) {
  CIM_ASSERT(!ring.empty());
  const auto& clusters = hierarchy_.level(level_).clusters;
  slots_.resize(ring.size());
  for (std::size_t r = 0; r < ring.size(); ++r) {
    Slot& slot = slots_[r];
    const cluster::Cluster& c = clusters[ring[r]];
    slot.members = c.members;
    slot.points.reserve(slot.members.size());
    for (const std::uint32_t item : slot.members) {
      slot.points.push_back(item_point(item));
    }
    slot.perm.resize(slot.members.size());
    for (std::uint32_t i = 0; i < slot.perm.size(); ++i) slot.perm[i] = i;
    if (member_rank_ != nullptr) {
      // Warm start: visit members in the order the warm tour visits them.
      // Ranks are min-city-ranks of disjoint city sets, hence distinct —
      // the sort is a strict total order and fully deterministic.
      std::sort(slot.perm.begin(), slot.perm.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return (*member_rank_)[slot.members[a]] <
                         (*member_rank_)[slot.members[b]];
                });
    }
    slot.prev = static_cast<std::uint32_t>((r + ring.size() - 1) %
                                           ring.size());
    slot.next = static_cast<std::uint32_t>((r + 1) % ring.size());
  }
  // Window shapes (and from them the collision-free spin-register cell-id
  // bases) only need the neighbour member counts, all known now.
  for (Slot& slot : slots_) {
    slot.shape = hw::WindowShape{slot.p(), slots_[slot.prev].p(),
                                 slots_[slot.next].p()};
  }
  std::vector<hw::WindowShape> shapes;
  shapes.reserve(slots_.size());
  for (const Slot& slot : slots_) shapes.push_back(slot.shape);
  const auto bases = spin_cell_bases(shapes);
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    slots_[r].spin_cell_base = bases[r];
  }
  // Chromatic colouring of the ring: alternate parity; an odd ring (of
  // length > 1) gives its last slot a third colour so no two adjacent
  // slots share a colour.
  color_count_ = 1;
  if (slots_.size() > 1) {
    color_count_ = 2;
    for (std::size_t r = 0; r < slots_.size(); ++r) {
      slots_[r].color = static_cast<std::uint8_t>(r % 2);
    }
    if (slots_.size() % 2 == 1) {
      slots_.back().color = 2;
      color_count_ = 3;
    }
  }
}

void LevelSolver::build_windows() {
  // Quantisation scale from the largest distance any window stores.
  double dmax = 0.0;
  for (const Slot& slot : slots_) {
    const Slot& prev = slots_[slot.prev];
    const Slot& next = slots_[slot.next];
    for (std::size_t a = 0; a < slot.points.size(); ++a) {
      for (std::size_t b = a + 1; b < slot.points.size(); ++b) {
        dmax = std::max(dmax,
                        exact_distance(slot.points[a], slot.points[b],
                                       slot.members[a], slot.members[b]));
      }
      for (std::size_t j = 0; j < prev.points.size(); ++j) {
        dmax = std::max(dmax,
                        exact_distance(prev.points[j], slot.points[a],
                                       prev.members[j], slot.members[a]));
      }
      for (std::size_t j = 0; j < next.points.size(); ++j) {
        dmax = std::max(dmax,
                        exact_distance(next.points[j], slot.points[a],
                                       next.members[j], slot.members[a]));
      }
    }
  }
  // Full-scale code of the configured precision maps to the largest
  // window distance.
  const double max_code =
      static_cast<double>((1U << config_.weight_bits) - 1U);
  scale_ = dmax > 0.0 ? max_code / dmax : 0.0;

  // Weight noise only exists in the SRAM-weight mode; the other modes run
  // on clean weights (spin noise / LFSR randomness enter elsewhere).
  const noise::SramCellModel* weight_model =
      config_.noise == NoiseMode::kSramWeight ? &cell_model_ : nullptr;

  std::uint64_t cell_base = 0;
  for (Slot& slot : slots_) {
    hw::WindowBuilder builder(slot.shape);
    for (std::uint32_t a = 0; a < slot.p(); ++a) {
      for (std::uint32_t b = a + 1; b < slot.p(); ++b) {
        builder.set_own_distance(
            a, b,
            quantise(exact_distance(slot.points[a], slot.points[b],
                                    slot.members[a], slot.members[b])));
      }
      const Slot& prev = slots_[slot.prev];
      for (std::uint32_t j = 0; j < slot.shape.p_prev; ++j) {
        builder.set_prev_distance(
            j, a,
            quantise(exact_distance(prev.points[j], slot.points[a],
                                    prev.members[j], slot.members[a])));
      }
      const Slot& next = slots_[slot.next];
      for (std::uint32_t j = 0; j < slot.shape.p_next; ++j) {
        builder.set_next_distance(
            j, a,
            quantise(exact_distance(next.points[j], slot.points[a],
                                    next.members[j], slot.members[a])));
      }
    }
    const auto image = builder.build();
    if (config_.backend == BackendKind::kFast) {
      slot.storage = hw::make_fast_storage(slot.shape.rows(),
                                           slot.shape.cols(), weight_model,
                                           cell_base, config_.weight_bits);
    } else {
      slot.storage = hw::make_bit_level_storage(
          slot.shape.rows(), slot.shape.cols(), weight_model, cell_base,
          config_.weight_bits);
    }
    slot.storage->write(image);
    cell_base += static_cast<std::uint64_t>(slot.shape.weights()) *
                 config_.weight_bits;
    if (memoize_) {
      // Stamp 0 never matches a generation (they start at 1), so every
      // column opens cold.
      slot.memo_value.assign(slot.shape.cols(), 0);
      slot.memo_stamp.assign(slot.shape.cols(), 0);
    }
  }
}

void LevelSolver::assemble_input(const Slot& slot,
                                 std::vector<std::uint8_t>& input,
                                 const SchedulePhase& phase) const {
  // NOLINT(anneal-dense-rebuild): this full-vector rebuild is the dense
  // reference baseline the sparse kernel is verified against.
  input.assign(slot.shape.rows(), 0);
  const std::uint32_t p = slot.p();
  for (std::uint32_t i = 0; i < p; ++i) {
    input[i * p + slot.perm[i]] = 1;
  }
  const Slot& prev = slots_[slot.prev];
  const Slot& next = slots_[slot.next];
  input[slot.shape.own_rows() + prev.perm.back()] = 1;
  input[slot.shape.own_rows() + slot.shape.p_prev + next.perm.front()] = 1;

  if (config_.noise == NoiseMode::kSramSpin) {
    // [4]-style: the spin registers themselves are the noisy cells; the
    // error pattern is spatial (fixed per epoch), so repeated reads of the
    // same state give the same corrupted state.
    for (std::uint32_t r = 0; r < input.size(); ++r) {
      const bool bit = input[r] != 0;
      const bool noisy = filter_spin_bit(cell_model_,
                                         slot.spin_cell_base + r, phase, bit);
      input[r] = noisy ? 1 : 0;
    }
  }
}

void LevelSolver::init_active(Slot& slot) {
  // NOLINT(anneal-dense-rebuild): one-time construction, not the hot path.
  slot.in_mask.assign(slot.shape.rows(), 0);
  slot.active.assign(slot.p() + 2ULL, 0);
  const std::uint32_t p = slot.p();
  for (std::uint32_t i = 0; i < p; ++i) {
    slot.active[i] = i * p + slot.perm[i];
    slot.in_mask[slot.active[i]] = 1;
  }
  const Slot& prev = slots_[slot.prev];
  const Slot& next = slots_[slot.next];
  slot.active[p] = slot.shape.own_rows() + prev.perm.back();
  slot.active[p + 1] =
      slot.shape.own_rows() + slot.shape.p_prev + next.perm.front();
  slot.in_mask[slot.active[p]] = 1;
  slot.in_mask[slot.active[p + 1]] = 1;
  if (config_.vector_kernel) {
    const std::span<std::uint64_t> words = slot_words(slot);
    std::fill(words.begin(), words.end(), 0);
    for (const std::uint32_t r : slot.active) {
      hw::packed_assign(words, r, true);
    }
  }
}

void LevelSolver::set_active_entry(Slot& slot, std::uint32_t idx,
                                   std::uint32_t row) {
  const std::uint32_t old = slot.active[idx];
  if (old == row) return;
  // The MAC input changed: move the slot to a fresh input generation so
  // memoized partial sums for the old state stop matching. The counter is
  // monotonic and generations are never reused, so a stale stamp can
  // never come back to life.
  slot.input_gen = ++slot.gen_counter;
  slot.in_mask[old] = 0;
  slot.active[idx] = row;
  slot.in_mask[row] = 1;
  if (config_.vector_kernel) {
    const std::span<std::uint64_t> words = slot_words(slot);
    hw::packed_assign(words, old, false);
    hw::packed_assign(words, row, true);
  }
}

void LevelSolver::refresh_boundary(Slot& slot) {
  const Slot& prev = slots_[slot.prev];
  const Slot& next = slots_[slot.next];
  set_active_entry(slot, slot.p(),
                   slot.shape.own_rows() + prev.perm.back());
  set_active_entry(
      slot, slot.p() + 1,
      slot.shape.own_rows() + slot.shape.p_prev + next.perm.front());
}

void LevelSolver::refresh_spin_cache(Slot& slot, const SchedulePhase& phase,
                                     LevelStats& stats) {
  if (slot.spin_epoch == phase.epoch) {
    ++stats.settle_cache_hits;
    return;
  }
  ++stats.settle_cache_refreshes;
  // New epoch → new settle pattern → the noisy MAC input changes even
  // though the active rows did not.
  slot.input_gen = ++slot.gen_counter;
  slot.spin_epoch = phase.epoch;
  const std::uint32_t rows = slot.shape.rows();
  // One settle decision per row for each written value (1 and 0).
  stats.noise_draws += 2ULL * rows;
  slot.spin_drop.assign(rows, 0);
  slot.spin_add.clear();
  if (config_.vector_kernel) {
    slot.spin_drop_words.assign(slot.packed_nwords, 0);
    slot.spin_add_words.assign(slot.packed_nwords, 0);
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint64_t id = slot.spin_cell_base + r;
    if (!filter_spin_bit(cell_model_, id, phase, true)) {
      slot.spin_drop[r] = 1;
      if (config_.vector_kernel) {
        hw::packed_assign(slot.spin_drop_words, r, true);
      }
    }
    if (filter_spin_bit(cell_model_, id, phase, false)) {
      slot.spin_add.push_back(r);
      if (config_.vector_kernel) {
        hw::packed_assign(slot.spin_add_words, r, true);
      }
    }
  }
}

std::span<const std::uint32_t> LevelSolver::noisy_input_rows(
    const Slot& slot, std::vector<std::uint32_t>& scratch) const {
  if (config_.noise != NoiseMode::kSramSpin) return slot.active;
  scratch.clear();
  for (const std::uint32_t r : slot.active) {
    if (!slot.spin_drop[r]) scratch.push_back(r);
  }
  for (const std::uint32_t r : slot.spin_add) {
    if (!slot.in_mask[r]) scratch.push_back(r);
  }
  return scratch;
}

std::span<const std::uint64_t> LevelSolver::noisy_input_words(
    const Slot& slot, std::vector<std::uint64_t>& scratch) const {
  const std::span<const std::uint64_t> in = slot_words(slot);
  if (config_.noise != NoiseMode::kSramSpin) return in;
  scratch.resize(slot.packed_nwords);
  // (in & ~drop) | add: drop only clears set bits, the OR-union of the
  // settled-to-1 rows dedupes against rows already active — the exact set
  // noisy_input_rows builds row by row.
  for (std::uint32_t w = 0; w < slot.packed_nwords; ++w) {
    scratch[w] = (in[w] & ~slot.spin_drop_words[w]) | slot.spin_add_words[w];
  }
  return scratch;
}

// The 4-MAC swap kernel: the innermost hot path. A determinism-taint
// root so neither the noise model nor the storage backends it reaches
// can grow a non-deterministic source.
CIM_DETERMINISM_ROOT
bool LevelSolver::attempt_swap(Slot& slot, const SchedulePhase& phase,
                               LevelStats& stats, HardwareActivity& hw,
                               util::Rng& rng, SwapScratch& scratch) {
  const std::uint32_t p = slot.p();
  if (p < 2) return false;
  ++stats.swaps_attempted;
  ++hw.swap_attempts;

  std::uint32_t i = static_cast<std::uint32_t>(rng.below(p));
  std::uint32_t j = static_cast<std::uint32_t>(rng.below(p - 1));
  if (j >= i) ++j;
  if (i > j) std::swap(i, j);

  const std::uint32_t k = slot.perm[i];
  const std::uint32_t l = slot.perm[j];

  std::int64_t before = 0;
  std::int64_t after = 0;
  // Partial-sum memo front-end (DESIGN.md §16): answer a (column, input
  // generation) pair from the slot's memo when the stamp matches, else run
  // the real MAC and remember it. A hit still charges the full hardware
  // read cost — the memo models skipping the host-side reduction, not the
  // row reads — and is sound because a column already MAC'd under this
  // generation has settled its lazy pseudo-read corruption (touched cells
  // never re-draw), so the repeat MAC would be a pure function.
  const auto memo_mac = [&](std::uint32_t col,
                            auto&& compute) -> std::int64_t {
    if (!memoize_) return compute();
    if (slot.memo_stamp[col] == slot.input_gen) {
      ++stats.memo_hits;
      slot.storage->charge_repeat_mac();
      return slot.memo_value[col];
    }
    const std::int64_t value = compute();
    slot.memo_value[col] = value;
    slot.memo_stamp[col] = slot.input_gen;
    ++stats.memo_misses;
    return value;
  };
  // Input generation to restore when the swap is rejected: the revert
  // returns the slot to exactly this input state, so partial sums stamped
  // with it stay valid across rejection streaks.
  std::uint64_t pre_gen = 0;
  if (config_.vector_kernel) {
    // Bit-sliced vector kernel: the same 4-MAC schedule as the sparse
    // oracle, but the input travels as packed 64-cell words through
    // WeightStorage::mac_packed (popcount per bit-plane). Identical
    // boundary/noise refresh order keeps the state and counter streams
    // bit-for-bit equal to the scalar path.
    refresh_boundary(slot);
    if (config_.noise == NoiseMode::kSramSpin) {
      refresh_spin_cache(slot, phase, stats);
    }
    pre_gen = slot.input_gen;
    const auto words_pre = noisy_input_words(slot, scratch.words);
    before = memo_mac(i * p + k,
                      [&] {
                        return slot.storage->mac_packed(
                            hw::ColIndex(i * p + k), words_pre);
                      }) +
             memo_mac(j * p + l, [&] {
               return slot.storage->mac_packed(hw::ColIndex(j * p + l),
                                               words_pre);
             });
    std::swap(slot.perm[i], slot.perm[j]);
    set_active_entry(slot, i, i * p + slot.perm[i]);
    set_active_entry(slot, j, j * p + slot.perm[j]);
    refresh_boundary(slot);  // a single-slot ring neighbours itself
    const auto words_post = noisy_input_words(slot, scratch.words);
    after = memo_mac(i * p + l,
                     [&] {
                       return slot.storage->mac_packed(
                           hw::ColIndex(i * p + l), words_post);
                     }) +
            memo_mac(j * p + k, [&] {
              return slot.storage->mac_packed(hw::ColIndex(j * p + k),
                                              words_post);
            });
  } else if (config_.sparse_swap_kernel) {
    // Incremental sparse kernel: the persistent active-row list holds the
    // p + 2 set input bits; a swap moves two own entries and the boundary
    // entries follow the neighbours' perms (refreshed O(1) here rather
    // than invalidation-pushed from the neighbour's accept).
    refresh_boundary(slot);
    if (config_.noise == NoiseMode::kSramSpin) {
      refresh_spin_cache(slot, phase, stats);
    }
    pre_gen = slot.input_gen;
    // Two MACs with the pre-swap spin state (Fig. 5(a), cycles 1–2).
    const auto rows_pre = noisy_input_rows(slot, scratch.rows);
    before = memo_mac(i * p + k,
                      [&] {
                        return slot.storage->mac_sparse(
                            hw::ColIndex(i * p + k), rows_pre);
                      }) +
             memo_mac(j * p + l, [&] {
               return slot.storage->mac_sparse(hw::ColIndex(j * p + l),
                                               rows_pre);
             });
    // Apply the swap, two MACs with the post-swap state (cycles 3–4).
    std::swap(slot.perm[i], slot.perm[j]);
    set_active_entry(slot, i, i * p + slot.perm[i]);
    set_active_entry(slot, j, j * p + slot.perm[j]);
    refresh_boundary(slot);  // a single-slot ring neighbours itself
    const auto rows_post = noisy_input_rows(slot, scratch.rows);
    after = memo_mac(i * p + l,
                     [&] {
                       return slot.storage->mac_sparse(
                           hw::ColIndex(i * p + l), rows_post);
                     }) +
            memo_mac(j * p + k, [&] {
              return slot.storage->mac_sparse(hw::ColIndex(j * p + k),
                                              rows_post);
            });
  } else {
    // Dense reference baseline (ablation + micro-bench): rebuild the full
    // input vector and scan every row per MAC.
    auto& input = scratch.input;
    assemble_input(slot, input, phase);
    before = slot.storage->mac(hw::ColIndex(i * p + k), input) +
             slot.storage->mac(hw::ColIndex(j * p + l), input);
    std::swap(slot.perm[i], slot.perm[j]);
    assemble_input(slot, input, phase);
    after = slot.storage->mac(hw::ColIndex(i * p + l), input) +
            slot.storage->mac(hw::ColIndex(j * p + k), input);
    if (config_.noise == NoiseMode::kSramSpin) {
      // The dense ablation filters every input bit per assembly instead
      // of reusing a per-epoch settle cache.
      stats.noise_draws += 2ULL * slot.shape.rows();
    }
  }

  // Dataflow accounting: the boundary spins cross the array edge once per
  // update, and the input register realigns by one window. The extra
  // chromatic phase of an odd ring (colour 2) is neither a solid nor a
  // dash column and is tallied on its own.
  const auto parity = slot.color == 0   ? hw::UpdateParity::kSolid
                      : slot.color == 1 ? hw::UpdateParity::kDash
                                        : hw::UpdateParity::kThird;
  hw.dataflow.record_edge_transfer(parity, p);
  hw.dataflow.record_input_shift(p);

  const std::int64_t delta = after - before;
  bool accept = false;
  switch (config_.noise) {
    case NoiseMode::kSramWeight:
    case NoiseMode::kSramSpin:
    case NoiseMode::kNone:
      accept = delta < 0;
      break;
    case NoiseMode::kLfsr: {
      const double temperature = equivalent_temperature(cell_model_, phase);
      accept = delta < 0;
      if (!accept && temperature > 0.0) {
        ++stats.noise_draws;
        accept = rng.uniform() <
                 std::exp(-static_cast<double>(delta) / temperature);
      }
      break;
    }
  }
  if (!accept) {
    std::swap(slot.perm[i], slot.perm[j]);  // revert
    if (config_.sparse_swap_kernel) {
      set_active_entry(slot, i, i * p + slot.perm[i]);
      set_active_entry(slot, j, j * p + slot.perm[j]);
      // On a single-slot ring the boundary rows follow this slot's own
      // perm, so re-sync them now (a no-op on multi-slot rings, whose
      // neighbours did not move). Only then is the input state exactly
      // the pre-swap one and the generation may be restored — partial
      // sums memoized before the attempt become valid again.
      refresh_boundary(slot);
      slot.input_gen = pre_gen;
    }
    return false;
  }
  ++stats.swaps_accepted;
  if (level_ == 0 && scratch.dcache == nullptr) {
    scratch.dcache = std::make_unique<tsp::DistanceCache>(instance_);
  }
  if (exact_swap_delta_applied(slot, i, j, scratch.dcache.get()) > 1e-9) {
    ++stats.uphill_accepted;
  }
  return true;
}

CIM_DETERMINISM_ROOT
void LevelSolver::run_color_parallel(std::uint8_t color,
                                     const SchedulePhase& phase,
                                     LevelStats& stats,
                                     HardwareActivity& hw) {
  color_slots_.clear();
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    if (slots_[r].color == color) color_slots_.push_back(r);
  }
  const std::size_t tasks = std::min<std::size_t>(
      config_.color_threads, color_slots_.size());
  if (tasks <= 1) {
    // Same per-slot streams as the pooled path, so results do not depend
    // on how many tasks a colour happens to get.
    for (const std::size_t r : color_slots_) {
      attempt_swap(slots_[r], phase, stats, hw, slot_rngs_[r], scratch_);
    }
    return;
  }
  // Per-task accumulators persist across colours/epochs/levels; the slot
  // assignment strides by the task count, which depends only on the
  // configuration and the ring — never on pool width or steal order —
  // and every slot owns its RNG stream, so results are a pure function
  // of the seed.
  if (worker_stats_.size() < tasks) {
    worker_stats_.resize(tasks);
    worker_hw_.resize(tasks);
    worker_scratch_.resize(tasks);
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    worker_stats_[t] = LevelStats{};
    worker_hw_[t] = HardwareActivity{};
  }
  util::ThreadPool::shared().run(tasks, [&](std::size_t t) {
    for (std::size_t q = t; q < color_slots_.size(); q += tasks) {
      const std::size_t r = color_slots_[q];
      attempt_swap(slots_[r], phase, worker_stats_[t], worker_hw_[t],
                   slot_rngs_[r], worker_scratch_[t]);
    }
  });
  for (std::size_t t = 0; t < tasks; ++t) {
    stats.swaps_attempted += worker_stats_[t].swaps_attempted;
    stats.swaps_accepted += worker_stats_[t].swaps_accepted;
    stats.uphill_accepted += worker_stats_[t].uphill_accepted;
    stats.settle_cache_hits += worker_stats_[t].settle_cache_hits;
    stats.settle_cache_refreshes += worker_stats_[t].settle_cache_refreshes;
    stats.noise_draws += worker_stats_[t].noise_draws;
    stats.memo_hits += worker_stats_[t].memo_hits;
    stats.memo_misses += worker_stats_[t].memo_misses;
    hw.swap_attempts += worker_hw_[t].swap_attempts;
    hw.dataflow += worker_hw_[t].dataflow;
  }
}

double LevelSolver::exact_swap_delta_applied(
    Slot& slot, std::uint32_t i, std::uint32_t j,
    tsp::DistanceCache* cache) const {
  // The swap is already applied to slot.perm; evaluate the exact energy
  // difference it produced: local energies of the swapped orders after
  // minus before (the noise-free counterpart of the 4-MAC comparison).
  const auto local = [&](std::uint32_t order, std::uint32_t member) {
    const Slot& prev = slots_[slot.prev];
    const Slot& next = slots_[slot.next];
    double acc = 0.0;
    const geo::Point pt = slot.points[member];
    const std::uint32_t item = slot.members[member];
    if (order == 0) {
      const std::uint32_t b = prev.perm.back();
      acc += exact_distance(prev.points[b], pt, prev.members[b], item, cache);
    } else {
      const std::uint32_t m = slot.perm[order - 1];
      if (m != member) {
        acc += exact_distance(slot.points[m], pt, slot.members[m], item,
                              cache);
      }
    }
    if (order + 1 == slot.p()) {
      const std::uint32_t b = next.perm.front();
      acc += exact_distance(next.points[b], pt, next.members[b], item, cache);
    } else {
      const std::uint32_t m = slot.perm[order + 1];
      if (m != member) {
        acc += exact_distance(slot.points[m], pt, slot.members[m], item,
                              cache);
      }
    }
    return acc;
  };

  const double after = local(i, slot.perm[i]) + local(j, slot.perm[j]);
  // Temporarily revert to evaluate the pre-swap energies.
  std::swap(slot.perm[i], slot.perm[j]);
  const double before = local(i, slot.perm[i]) + local(j, slot.perm[j]);
  std::swap(slot.perm[i], slot.perm[j]);
  return after - before;
}

// The epoch loop — the canonical determinism-taint root (DESIGN.md
// §13): everything reachable from here must draw randomness only
// from the seeded per-slot streams.
CIM_DETERMINISM_ROOT
LevelStats LevelSolver::run(HardwareActivity& hw,
                            std::vector<double>* trace) {
  LevelStats stats;
  stats.level = level_;
  stats.clusters = slots_.size();
  stats.iterations = schedule_.total_iterations();

  const std::uint32_t max_rows = [&] {
    std::uint32_t m = 0;
    for (const Slot& s : slots_) m = std::max(m, s.shape.rows());
    return m;
  }();

  // All trace events of the level solve are emitted from this
  // (coordinating) thread — pool workers only fill their per-task stats —
  // so the event stream lands in one sink and its order is program order,
  // independent of CIMANNEAL_THREADS (the golden-trajectory contract,
  // DESIGN.md §12).
  const telemetry::Scope level_scope(
      telemetry::Registry::global(), "anneal.level",
      {{"level", static_cast<double>(level_)},
       {"clusters", static_cast<double>(slots_.size())}});
  // Per-epoch swap deltas feeding the accept-rate histogram.
  [[maybe_unused]] std::size_t epoch_attempted = 0;
  [[maybe_unused]] std::size_t epoch_accepted = 0;

  for (std::size_t iter = 0; iter < schedule_.total_iterations(); ++iter) {
    SchedulePhase phase = schedule_.at(iter);
    phase.epoch += epoch_base_;

    if (phase.write_back) {
      for (Slot& slot : slots_) {
        slot.storage->write_back(phase);
        // Weights changed (golden restore + fresh corruption pattern):
        // every memoized partial sum is stale.
        slot.input_gen = ++slot.gen_counter;
      }
      // All arrays refresh in parallel; rows within an array are written
      // sequentially.
      hw.writeback_cycles += max_rows;
      stats.update_cycles += max_rows;
    }

    if (config_.chromatic_parallel) {
      // All slots of one colour update in the same 4 MAC cycles: their
      // ring neighbours hold other colours, so the frozen-neighbour reads
      // are race-free (chromatic Gibbs sampling).
      for (std::uint8_t color = 0; color < color_count_; ++color) {
        if (!slot_rngs_.empty()) {
          run_color_parallel(color, phase, stats, hw);
        } else {
          for (Slot& slot : slots_) {
            if (slot.color == color) {
              attempt_swap(slot, phase, stats, hw, rng_, scratch_);
            }
          }
        }
        hw.update_cycles += 4;
        stats.update_cycles += 4;
      }
    } else {
      // Sequential Gibbs baseline: one cluster at a time.
      for (Slot& slot : slots_) {
        attempt_swap(slot, phase, stats, hw, rng_, scratch_);
        hw.update_cycles += 4;
        stats.update_cycles += 4;
      }
    }

    if (trace) {
      const double energy = exact_ring_length();
      trace->push_back(energy);
      if constexpr (telemetry::kEnabled) {
        // The telemetry copy of the convergence curve: the same value,
        // pushed in the same iteration — bench_fig2 asserts bit-equality.
        telemetry::Registry::global().instant(
            "anneal.trace", {{"level", static_cast<double>(level_)},
                             {"iteration", static_cast<double>(iter)},
                             {"energy", energy}});
      }
    }

    if constexpr (telemetry::kEnabled) {
      const bool epoch_done =
          iter + 1 == schedule_.total_iterations() ||
          schedule_.at(iter + 1).write_back;
      if (epoch_done) {
        telemetry::Registry& telem = telemetry::Registry::global();
        telem.counter_event(
            "anneal.epoch",
            {{"level", static_cast<double>(level_)},
             {"epoch", static_cast<double>(phase.epoch)},
             {"iteration", static_cast<double>(iter)},
             {"energy", exact_ring_length()},
             {"swaps_attempted", static_cast<double>(stats.swaps_attempted)},
             {"swaps_accepted", static_cast<double>(stats.swaps_accepted)},
             {"uphill_accepted", static_cast<double>(stats.uphill_accepted)},
             {"settle_cache_hits",
              static_cast<double>(stats.settle_cache_hits)},
             {"noise_draws", static_cast<double>(stats.noise_draws)}});
        const std::size_t attempted = stats.swaps_attempted - epoch_attempted;
        const std::size_t accepted = stats.swaps_accepted - epoch_accepted;
        telem
            .histogram("anneal.epoch_accept_rate",
                       {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0})
            .observe(attempted == 0 ? 0.0
                                    : static_cast<double>(accepted) /
                                          static_cast<double>(attempted));
        epoch_attempted = stats.swaps_attempted;
        epoch_accepted = stats.swaps_accepted;
      }
    }
  }

  stats.ring_length_after = exact_ring_length();
  for (const Slot& slot : slots_) {
    hw.storage += slot.storage->counters();
  }
  // Collect the level's distance-cache traffic: the coordinating thread's
  // cache (window build + ring scoring + serial swap path) plus every
  // worker's private cache. A LevelSolver lives for exactly one level, so
  // the cumulative cache stats are the level totals.
  const auto flush_dcache =
      [&stats](const std::unique_ptr<tsp::DistanceCache>& cache) {
        if (!cache) return;
        stats.dcache_hits += cache->stats().hits;
        stats.dcache_misses += cache->stats().misses;
        stats.dcache_bytes += cache->stats().bytes_touched;
      };
  flush_dcache(dcache_);
  flush_dcache(scratch_.dcache);
  for (const SwapScratch& scratch : worker_scratch_) {
    flush_dcache(scratch.dcache);
  }

  if constexpr (telemetry::kEnabled) {
    // Flush the level totals into the monotonic registry counters.
    telemetry::Registry& telem = telemetry::Registry::global();
    telem.counter("anneal.swaps_attempted").add(stats.swaps_attempted);
    telem.counter("anneal.swaps_accepted").add(stats.swaps_accepted);
    telem.counter("anneal.uphill_accepted").add(stats.uphill_accepted);
    telem.counter("anneal.settle_cache_hits").add(stats.settle_cache_hits);
    telem.counter("anneal.settle_cache_refreshes")
        .add(stats.settle_cache_refreshes);
    telem.counter("anneal.noise_draws").add(stats.noise_draws);
    telem.counter("anneal.memo_hits").add(stats.memo_hits);
    telem.counter("anneal.memo_misses").add(stats.memo_misses);
    telem.counter("anneal.dcache_hits").add(stats.dcache_hits);
    telem.counter("anneal.dcache_misses").add(stats.dcache_misses);
    telem.counter("anneal.dcache_bytes").add(stats.dcache_bytes);
    telem.counter("anneal.update_cycles").add(stats.update_cycles);
    telem.counter("anneal.levels_solved").add(1);
  }
  return stats;
}

std::vector<std::uint32_t> LevelSolver::expanded_ring() const {
  std::vector<std::uint32_t> out;
  for (const Slot& slot : slots_) {
    for (std::uint32_t i = 0; i < slot.p(); ++i) {
      out.push_back(slot.members[slot.perm[i]]);
    }
  }
  return out;
}

double LevelSolver::exact_ring_length() const {
  // Walk the expanded member sequence with exact distances.
  double total = 0.0;
  geo::Point prev_pt{};
  std::uint32_t prev_item = 0;
  bool have_prev = false;
  geo::Point first_pt{};
  std::uint32_t first_item = 0;
  for (const Slot& slot : slots_) {
    for (std::uint32_t i = 0; i < slot.p(); ++i) {
      const std::uint32_t local = slot.perm[i];
      const geo::Point pt = slot.points[local];
      const std::uint32_t item = slot.members[local];
      if (have_prev) {
        total += exact_distance(prev_pt, pt, prev_item, item);
      } else {
        first_pt = pt;
        first_item = item;
        have_prev = true;
      }
      prev_pt = pt;
      prev_item = item;
    }
  }
  if (have_prev) {
    total += exact_distance(prev_pt, first_pt, prev_item, first_item);
  }
  return total;
}

}  // namespace

std::vector<std::uint64_t> spin_cell_bases(
    const std::vector<hw::WindowShape>& shapes) {
  // High tag keeps spin-register ids disjoint from the weight-cell ids,
  // which count up from 0.
  constexpr std::uint64_t kTag = 0x8000000000000000ULL;
  std::uint64_t stride = 256;  // historical stride, kept as a floor
  for (const hw::WindowShape& shape : shapes) {
    stride = std::max<std::uint64_t>(stride, shape.rows());
  }
  std::vector<std::uint64_t> bases(shapes.size());
  for (std::size_t r = 0; r < shapes.size(); ++r) {
    bases[r] = kTag | (static_cast<std::uint64_t>(r) * stride);
  }
  return bases;
}

ClusteredAnnealer::ClusteredAnnealer(AnnealerConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.weight_bits >= 1 && config_.weight_bits <= 8,
              "weight precision must be 1..8 bits");
  CIM_REQUIRE(config_.color_threads >= 1,
              "color_threads must be at least 1");
  CIM_REQUIRE(config_.color_threads == 1 ||
                  (config_.chromatic_parallel && config_.sparse_swap_kernel),
              "color_threads > 1 requires chromatic_parallel and the sparse "
              "swap kernel");
  CIM_REQUIRE(!config_.vector_kernel || config_.sparse_swap_kernel,
              "vector_kernel requires the sparse swap kernel (its active-row "
              "state backs the packed input plane)");
}

AnnealResult ClusteredAnnealer::solve(const tsp::Instance& instance) const {
  const telemetry::Scope solve_scope(
      telemetry::Registry::global(), "anneal.solve",
      {{"cities", static_cast<double>(instance.size())},
       {"seed", static_cast<double>(config_.seed)}});
  const Hierarchy hierarchy(instance, config_.clustering);

  AnnealResult result;
  result.hierarchy_depth = hierarchy.depth();
  result.max_cluster_size = hierarchy.max_cluster_size();

  const noise::SramCellModel cell_model(
      config_.sram, util::hash_combine(config_.seed, 0xCE11));
  const noise::AnnealSchedule schedule(config_.schedule);
  util::Rng rng(util::hash_combine(config_.seed, 0xA22EA1));

  // Warm start (src/store): rank every city by its position in the given
  // tour, propagate min-ranks up the hierarchy, and let ranks drive the
  // initial ring and member orders instead of the cold construction.
  const bool warm = !config_.initial_order.empty();
  std::vector<std::uint64_t> city_rank;
  std::vector<std::vector<std::uint64_t>> level_rank;
  if (warm) {
    CIM_REQUIRE(config_.initial_order.size() == instance.size(),
                "initial_order must be a permutation of the instance's "
                "cities");
    std::vector<std::uint8_t> seen(instance.size(), 0);
    city_rank.assign(instance.size(), 0);
    for (std::size_t pos = 0; pos < config_.initial_order.size(); ++pos) {
      const tsp::CityId city = config_.initial_order[pos];
      CIM_REQUIRE(city < instance.size() && !seen[city],
                  "initial_order must be a permutation of the instance's "
                  "cities");
      seen[city] = 1;
      city_rank[city] = pos;
    }
    // level_rank[k][c] = min rank over the cities of cluster c at level k
    // (distinct across clusters of a level: their city sets are disjoint).
    level_rank.resize(hierarchy.depth());
    for (std::size_t k = 0; k < hierarchy.depth(); ++k) {
      const auto& clusters = hierarchy.level(k).clusters;
      level_rank[k].resize(clusters.size());
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        std::uint64_t best = ~0ULL;
        for (const std::uint32_t m : clusters[c].members) {
          best = std::min(best, k == 0 ? city_rank[m] : level_rank[k - 1][m]);
        }
        level_rank[k][c] = best;
      }
    }
  }

  // Order the top level's super-clusters into a ring: by warm-tour rank
  // when warm-starting, by the centroid space-filling heuristic otherwise.
  const std::size_t top = hierarchy.depth() - 1;
  std::vector<std::uint32_t> ring;
  if (warm) {
    ring.resize(hierarchy.top().clusters.size());
    for (std::uint32_t c = 0; c < ring.size(); ++c) ring[c] = c;
    std::sort(ring.begin(), ring.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return level_rank[top][a] < level_rank[top][b];
              });
  } else {
    std::vector<geo::Point> top_centroids;
    top_centroids.reserve(hierarchy.top().clusters.size());
    for (const cluster::Cluster& c : hierarchy.top().clusters) {
      top_centroids.push_back(c.centroid);
    }
    ring = order_top_ring(top_centroids);
  }

  // Hierarchical annealing: descend level-by-level. The same physical
  // arrays are rewritten per level, so cell ids restart at 0 while the
  // write-back epoch keeps increasing (temporal decorrelation across
  // levels on the same spatial variation).
  std::uint64_t epoch_base = 0;
  for (std::size_t k = top + 1; k-- > 0;) {
    const std::vector<std::uint64_t>* member_rank = nullptr;
    if (warm) {
      // A level-k slot's members are items one level below: cities at
      // level 0, level-(k-1) clusters above.
      member_rank = k == 0 ? &city_rank : &level_rank[k - 1];
    }
    LevelSolver solver(config_, instance, hierarchy, k, ring, cell_model,
                       schedule, rng, epoch_base, member_rank);
    std::vector<double>* trace =
        (config_.record_trace && k == 0) ? &result.trace : nullptr;
    result.levels.push_back(solver.run(result.hw, trace));
    ring = solver.expanded_ring();
    epoch_base += schedule.epochs();
  }

  std::vector<tsp::CityId> order(ring.begin(), ring.end());
  result.tour = tsp::Tour(std::move(order));
  CIM_ASSERT_MSG(result.tour.is_valid(instance.size()),
                 "annealer produced an invalid tour");
  result.length = result.tour.length(instance);

  if constexpr (telemetry::kEnabled) {
    telemetry::Registry& telem = telemetry::Registry::global();
    telem.counter("anneal.solves").add(1);
    telem.gauge("anneal.last_tour_length")
        .set(static_cast<double>(result.length));
    hw::publish_activity(result.hw, telem);
  }
  return result;
}

}  // namespace cim::anneal
