// Generic QUBO/Ising models on the noisy digital-CIM substrate.
//
// The front-end counterpart of MaxCutAnnealer: any GenericModel (graph
// files, penalty-encoded colouring/knapsack, arbitrary sparse J/h
// instances) is mapped to integer coefficient planes (map_to_hardware)
// and annealed with the same hardware primitives — signed couplings as a
// positive and a negative 8-bit magnitude plane, spins as the 0/1 input
// register, one spin update = column MAC + sign decision, the §IV.B
// schedule annealing the weight noise away.
//
// Two generalisations over the Max-Cut path:
//
//   * External fields ride in an always-on bias row: windows carry
//     rows = n + 1, row n stores |h_v| (by sign plane) and its input bit
//     is permanently 1, so the 2·MAC − row_sum identity yields
//     field_v = Σ_u W_uv σ_u + F_v with no ancilla spin.
//   * The spin grouping is a strategy hook (ising/partition.hpp): each
//     group becomes one weight window (a column block); kChromatic
//     groups update all members in one hardware cycle, the blocked
//     strategies charge one cycle per member.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/kernel_config.hpp"
#include "anneal/noise_source.hpp"
#include "cim/storage.hpp"
#include "ising/generic.hpp"
#include "ising/partition.hpp"
#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"

namespace cim::anneal {

struct GenericAnnealConfig {
  noise::AnnealSchedule::Params schedule;  ///< sweeps = total_iterations
  noise::SramNoiseParams sram;
  NoiseMode noise = NoiseMode::kSramWeight;
  /// Clustering strategy for the window partition (the TAXI-style
  /// quality/parallelism axis the bench sweeps).
  ising::GroupStrategy strategy = ising::GroupStrategy::kChromatic;
  std::uint32_t group_block = 64;  ///< width bound for blocked strategies
  /// Bit-sliced packed MACs; bit-identical to the scalar oracle
  /// (energies, flip sequence, StorageCounters).
  bool vector_kernel = default_vector_kernel();
  /// Per-spin partial-sum memoization under an input-state generation
  /// (DESIGN.md §16); bit-identical to the unmemoized paths.
  bool memoize_partial_sums = default_memoize();
  std::uint32_t weight_bits = 8;
  std::uint64_t seed = 1;
  /// Optional warm start: full ±1 assignment replacing the random
  /// initial state (one spin per model variable).
  std::vector<ising::Spin> initial_spins;
  bool record_trace = false;
};

struct GenericResult {
  std::vector<ising::Spin> spins;       ///< final state
  std::vector<ising::Spin> best_spins;  ///< lowest-energy state seen
  /// Exact integer energies in hardware units (mapping.energy_hw of the
  /// unquantised mapping — evaluation is exact even when the stored
  /// planes had to be scaled down).
  long long energy_hw = 0;
  long long best_energy_hw = 0;
  double energy = 0.0;  ///< model units: offset + hw/multiplier
  double best_energy = 0.0;
  std::size_t sweeps = 0;
  std::size_t flips = 0;
  std::size_t group_count = 0;  ///< windows in the partition
  std::size_t max_group = 0;    ///< widest window (columns)
  bool parallel_groups = false; ///< chromatic partition (1 cycle/group)
  /// True when every hardware coefficient fit weight_bits verbatim — the
  /// anneal dynamics then see the model exactly (no quantisation loss).
  bool exact_mapping = false;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::uint64_t update_cycles = 0;
  hw::StorageCounters storage;
  std::vector<long long> trace;  ///< energy_hw after each sweep (optional)
};

class GenericAnnealer {
 public:
  explicit GenericAnnealer(GenericAnnealConfig config);

  const GenericAnnealConfig& config() const { return config_; }

  GenericResult solve(const ising::GenericModel& model) const;

 private:
  GenericAnnealConfig config_;
};

}  // namespace cim::anneal
