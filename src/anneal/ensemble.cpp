#include "anneal/ensemble.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::anneal {

long long EnsembleResult::worst_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  return *std::max_element(replica_lengths.begin(), replica_lengths.end());
}

double EnsembleResult::mean_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  double acc = 0.0;
  for (const long long len : replica_lengths) {
    acc += static_cast<double>(len);
  }
  return acc / static_cast<double>(replica_lengths.size());
}

ReplicaEnsemble::ReplicaEnsemble(EnsembleConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.replicas >= 1, "ensemble needs at least one replica");
}

EnsembleResult ReplicaEnsemble::solve(const tsp::Instance& instance) const {
  std::vector<AnnealResult> results(config_.replicas);

  const auto run_replica = [&](std::size_t r) {
    AnnealerConfig config = config_.base;
    // Independent annealing randomness and noise pattern per replica
    // (each replica is a distinct physical array region); the clustering
    // stays shared, as the hierarchy would be computed once.
    config.seed = util::hash_combine(config_.base.seed, 0xE5E + r);
    results[r] = ClusteredAnnealer(config).solve(instance);
  };

  if (config_.use_threads && config_.replicas > 1) {
    std::vector<std::thread> workers;
    workers.reserve(config_.replicas);
    for (std::size_t r = 0; r < config_.replicas; ++r) {
      workers.emplace_back(run_replica, r);
    }
    for (auto& w : workers) w.join();
  } else {
    for (std::size_t r = 0; r < config_.replicas; ++r) run_replica(r);
  }

  EnsembleResult ensemble;
  ensemble.replica_lengths.reserve(config_.replicas);
  std::size_t best = 0;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    ensemble.replica_lengths.push_back(results[r].length);
    if (results[r].length < results[best].length) best = r;
  }
  ensemble.best_replica = best;
  ensemble.best = std::move(results[best]);
  return ensemble;
}

}  // namespace cim::anneal
