#include "anneal/ensemble.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::anneal {

long long EnsembleResult::worst_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  return *std::max_element(replica_lengths.begin(), replica_lengths.end());
}

double EnsembleResult::mean_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  double acc = 0.0;
  for (const long long len : replica_lengths) {
    acc += static_cast<double>(len);
  }
  return acc / static_cast<double>(replica_lengths.size());
}

ReplicaEnsemble::ReplicaEnsemble(EnsembleConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.replicas >= 1, "ensemble needs at least one replica");
}

namespace {

/// Joins every still-joinable thread on scope exit, so a throw while
/// spawning (or rethrowing a replica failure) never reaches ~thread() on
/// a joinable thread, which would std::terminate.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::vector<std::thread>& threads)
      : threads_(threads) {}
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;
  ~ThreadJoiner() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::vector<std::thread>& threads_;
};

}  // namespace

EnsembleResult ReplicaEnsemble::solve(const tsp::Instance& instance) const {
  std::vector<AnnealResult> results(config_.replicas);
  std::vector<std::exception_ptr> errors(config_.replicas);

  const auto run_replica = [&](std::size_t r) {
    AnnealerConfig config = config_.base;
    // Independent annealing randomness and noise pattern per replica
    // (each replica is a distinct physical array region); the clustering
    // stays shared, as the hierarchy would be computed once.
    config.seed = util::hash_combine(config_.base.seed, 0xE5E + r);
    results[r] = ClusteredAnnealer(config).solve(instance);
  };

  if (config_.use_threads && config_.replicas > 1) {
    std::vector<std::thread> workers;
    {
      ThreadJoiner joiner(workers);
      workers.reserve(config_.replicas);
      for (std::size_t r = 0; r < config_.replicas; ++r) {
        // A replica failure must not escape its thread (that would
        // std::terminate); capture it and rethrow after the join barrier.
        workers.emplace_back([&run_replica, &errors, r] {
          try {
            run_replica(r);
          } catch (...) {
            errors[r] = std::current_exception();
          }
        });
      }
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::size_t r = 0; r < config_.replicas; ++r) run_replica(r);
  }

  EnsembleResult ensemble;
  ensemble.replica_lengths.reserve(config_.replicas);
  std::size_t best = 0;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    ensemble.replica_lengths.push_back(results[r].length);
    if (results[r].length < results[best].length) best = r;
  }
  ensemble.best_replica = best;
  ensemble.best = std::move(results[best]);
  return ensemble;
}

}  // namespace cim::anneal
