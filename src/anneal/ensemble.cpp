#include "anneal/ensemble.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace cim::anneal {

namespace telemetry = util::telemetry;

long long EnsembleResult::worst_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  return *std::max_element(replica_lengths.begin(), replica_lengths.end());
}

double EnsembleResult::mean_length() const {
  CIM_ASSERT(!replica_lengths.empty());
  double acc = 0.0;
  for (const long long len : replica_lengths) {
    acc += static_cast<double>(len);
  }
  return acc / static_cast<double>(replica_lengths.size());
}

ReplicaEnsemble::ReplicaEnsemble(EnsembleConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.replicas >= 1, "ensemble needs at least one replica");
}

// Replica fan-out and lowest-index reduction: a determinism-taint root
// so per-replica seeding stays a pure function of the replica index.
CIM_DETERMINISM_ROOT
EnsembleResult ReplicaEnsemble::solve(const tsp::Instance& instance) const {
  const telemetry::Scope ensemble_scope(
      telemetry::Registry::global(), "ensemble.solve",
      {{"replicas", static_cast<double>(config_.replicas)}});
  std::vector<AnnealResult> results(config_.replicas);
  std::vector<std::exception_ptr> errors(config_.replicas);

  const auto run_replica = [&](std::size_t r) {
    AnnealerConfig config = config_.base;
    // Independent annealing randomness and noise pattern per replica
    // (each replica is a distinct physical array region); the clustering
    // stays shared, as the hierarchy would be computed once.
    config.seed = util::hash_combine(config_.base.seed, 0xE5E + r);
    results[r] = ClusteredAnnealer(config).solve(instance);
  };

  if (config_.use_threads && config_.replicas > 1) {
    // Replicas are tasks on the persistent shared pool instead of raw OS
    // threads, so in-flight replicas are capped at `workers` (default:
    // the pool width) rather than growing with the replica count. Each
    // runner pulls replica indices from one atomic cursor; results[r]
    // depends only on r, so which runner solves which replica cannot
    // change the outcome.
    util::ThreadPool& pool = util::ThreadPool::shared();
    const std::size_t cap =
        config_.workers > 0 ? config_.workers
                            : std::max<std::size_t>(pool.width(), 1);
    const std::size_t runners = std::min(cap, config_.replicas);
    std::atomic<std::size_t> next{0};
    pool.run(runners, [&](std::size_t) {
      for (std::size_t r = next.fetch_add(1); r < config_.replicas;
           r = next.fetch_add(1)) {
        // A replica failure must not abort its siblings; capture it and
        // rethrow after every replica finished, in replica order.
        try {
          run_replica(r);
        } catch (...) {
          errors[r] = std::current_exception();
        }
      }
    });
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::size_t r = 0; r < config_.replicas; ++r) run_replica(r);
  }

  EnsembleResult ensemble;
  ensemble.replica_lengths.reserve(config_.replicas);
  std::size_t best = 0;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    ensemble.replica_lengths.push_back(results[r].length);
    if (results[r].length < results[best].length) best = r;
  }
  ensemble.best_replica = best;
  ensemble.best = std::move(results[best]);

  if constexpr (telemetry::kEnabled) {
    telemetry::Registry& telem = telemetry::Registry::global();
    telem.counter("ensemble.replicas_solved").add(config_.replicas);
    telem.gauge("ensemble.last_best_length")
        .set(static_cast<double>(ensemble.best.length));
    telem.gauge("ensemble.last_mean_length").set(ensemble.mean_length());
  }
  return ensemble;
}

}  // namespace cim::anneal
