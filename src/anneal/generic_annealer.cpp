#include "anneal/generic_annealer.hpp"

#include <algorithm>
#include <cmath>

#include "cim/activity.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace cim::anneal {

namespace telemetry = util::telemetry;

namespace {

/// One partition group's weight window: the column block holding the
/// couplings (and bias row) of its member spins, as a pos/neg magnitude
/// plane pair.
struct Window {
  std::unique_ptr<hw::WeightStorage> pos;
  std::unique_ptr<hw::WeightStorage> neg;
};

}  // namespace

GenericAnnealer::GenericAnnealer(GenericAnnealConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.weight_bits >= 1 && config_.weight_bits <= 8,
              "weight precision must be 1..8 bits");
  CIM_REQUIRE(config_.group_block >= 1, "group block width must be >= 1");
}

CIM_DETERMINISM_ROOT
GenericResult GenericAnnealer::solve(const ising::GenericModel& model) const {
  const telemetry::Scope solve_scope(
      telemetry::Registry::global(), "generic.solve",
      {{"spins", static_cast<double>(model.size())},
       {"seed", static_cast<double>(config_.seed)}});
  const std::size_t n = model.size();
  const ising::HardwareMapping mapping = ising::map_to_hardware(model);
  const ising::Partition partition =
      ising::build_partition(model, config_.strategy, config_.group_block);
  const noise::AnnealSchedule schedule(config_.schedule);
  const noise::SramCellModel cell_model(
      config_.sram, util::hash_combine(config_.seed, 0x4C7));
  util::Rng rng(util::hash_combine(config_.seed, 0x3C1));

  // Scale the coefficient magnitudes down to the weight precision when
  // they do not fit; never scale up, so integer-coefficient families stay
  // exact (exact_mapping). Reported energies always use the unquantised
  // mapping, so only the *dynamics* see quantisation loss.
  const auto max_q =
      static_cast<std::int32_t>((1U << config_.weight_bits) - 1U);
  const bool exact = mapping.exact_in_bits(config_.weight_bits);
  const double scale =
      exact ? 1.0
            : static_cast<double>(max_q) / static_cast<double>(mapping.max_abs);
  const auto quantise = [&](std::int32_t w) {
    return static_cast<std::uint8_t>(
        std::clamp(std::round(std::abs(w) * scale), 0.0,
                   static_cast<double>(max_q)));
  };

  // Windows: one pos/neg plane pair per partition group. Rows 0..n−1 are
  // the spins; when the model has fields an extra always-on bias row n
  // carries |h_v|. Column p of group g belongs to spin groups[g][p].
  const auto rows =
      static_cast<std::uint32_t>(mapping.has_fields ? n + 1 : n);
  std::vector<std::size_t> group_of(n, 0);  // spin -> group
  std::vector<std::uint32_t> col_of(n, 0);  // spin -> column in its group
  for (std::size_t g = 0; g < partition.groups.size(); ++g) {
    for (std::size_t p = 0; p < partition.groups[g].size(); ++p) {
      const ising::SpinIndex v = partition.groups[g][p];
      group_of[v] = g;
      col_of[v] = static_cast<std::uint32_t>(p);
    }
  }

  const noise::SramCellModel* weight_model =
      config_.noise == NoiseMode::kSramWeight ? &cell_model : nullptr;
  std::vector<Window> windows;
  windows.reserve(partition.groups.size());
  std::uint64_t cell_base = 0;
  for (const auto& group : partition.groups) {
    const auto cols = static_cast<std::uint32_t>(group.size());
    Window window;
    const std::uint64_t plane_cells =
        static_cast<std::uint64_t>(rows) * cols * config_.weight_bits;
    window.pos = hw::make_fast_storage(rows, cols, weight_model, cell_base,
                                       config_.weight_bits);
    window.neg = hw::make_fast_storage(rows, cols, weight_model,
                                       cell_base + plane_cells,
                                       config_.weight_bits);
    cell_base += 2 * plane_cells;
    windows.push_back(std::move(window));
  }
  // Plane images: fields into the bias row of each member's column, then
  // couplings scattered so W_uv lands in row u of spin v's column (both
  // directions); install per group.
  {
    std::vector<std::vector<std::uint8_t>> pos_planes(windows.size());
    std::vector<std::vector<std::uint8_t>> neg_planes(windows.size());
    for (std::size_t g = 0; g < windows.size(); ++g) {
      const std::size_t cols = partition.groups[g].size();
      pos_planes[g].assign(static_cast<std::size_t>(rows) * cols, 0);
      neg_planes[g].assign(static_cast<std::size_t>(rows) * cols, 0);
      for (std::uint32_t p = 0; p < cols; ++p) {
        const ising::SpinIndex v = partition.groups[g][p];
        if (mapping.has_fields && mapping.fields[v] != 0) {
          auto& plane = mapping.fields[v] > 0 ? pos_planes[g] : neg_planes[g];
          plane[static_cast<std::size_t>(n) * cols + p] =
              quantise(mapping.fields[v]);
        }
      }
    }
    for (const ising::HardwareMapping::Term& t : mapping.couplings) {
      const std::uint8_t q = quantise(t.w);
      auto& plane_a = t.w > 0 ? pos_planes : neg_planes;
      plane_a[group_of[t.b]][static_cast<std::size_t>(t.a) *
                                 partition.groups[group_of[t.b]].size() +
                             col_of[t.b]] = q;
      plane_a[group_of[t.a]][static_cast<std::size_t>(t.b) *
                                 partition.groups[group_of[t.a]].size() +
                             col_of[t.a]] = q;
    }
    for (std::size_t g = 0; g < windows.size(); ++g) {
      windows[g].pos->write(pos_planes[g]);
      windows[g].neg->write(neg_planes[g]);
    }
  }

  GenericResult result;
  result.group_count = partition.size();
  result.max_group = partition.max_group();
  result.parallel_groups = partition.parallel_safe;
  result.exact_mapping = exact;
  result.sweeps = schedule.total_iterations();
  if (!config_.initial_spins.empty()) {
    CIM_REQUIRE(config_.initial_spins.size() == n,
                "initial_spins must have one spin per variable");
    for (const ising::Spin s : config_.initial_spins) {
      CIM_REQUIRE(s == 1 || s == -1, "initial_spins entries must be ±1");
    }
    result.spins = config_.initial_spins;
  } else {
    result.spins = ising::random_spins(n, rng);
  }

  // Input registers: σ+ and the all-ones vector, with the bias row (if
  // any) permanently 1 in both.
  std::vector<std::uint8_t> sigma_plus(rows, 1);
  const std::vector<std::uint8_t> ones(rows, 1);
  std::vector<std::int64_t> row_sum(n, 0);

  // Per-spin partial-sum memo (DESIGN.md §16), same discipline as the
  // Max-Cut path: values are stamped with an input-state generation that
  // advances on any flip or write-back.
  const bool memoize = config_.memoize_partial_sums;
  std::vector<std::int64_t> memo_value;
  std::vector<std::uint64_t> memo_stamp;  // 0 never matches (gens start at 1)
  std::uint64_t gen_counter = 1;
  std::uint64_t input_gen = 1;
  if (memoize) {
    memo_value.assign(n, 0);
    memo_stamp.assign(n, 0);
  }

  hw::PackedBits sigma_packed;
  hw::PackedBits ones_packed;
  if (config_.vector_kernel) {
    sigma_packed.resize(rows);
    ones_packed.resize(rows);
    for (std::uint32_t r = 0; r < rows; ++r) ones_packed.set(r);
    if (mapping.has_fields) sigma_packed.set(static_cast<std::uint32_t>(n));
  }

  const auto window_mac = [&](ising::SpinIndex v,
                              std::span<const std::uint8_t> dense,
                              std::span<const std::uint64_t> packed) {
    Window& w = windows[group_of[v]];
    const hw::ColIndex col(col_of[v]);
    return config_.vector_kernel
               ? w.pos->mac_packed(col, packed) -
                     w.neg->mac_packed(col, packed)
               : w.pos->mac(col, dense) - w.neg->mac(col, dense);
  };

  const auto refresh_row_sums = [&] {
    for (std::uint32_t v = 0; v < n; ++v) {
      row_sum[v] = window_mac(v, ones, ones_packed.words());
    }
  };
  refresh_row_sums();

  result.energy_hw = mapping.energy_hw(result.spins);
  result.best_energy_hw = result.energy_hw;
  result.best_spins = result.spins;

  for (std::size_t sweep = 0; sweep < schedule.total_iterations(); ++sweep) {
    const auto phase = schedule.at(sweep);
    if (phase.write_back) {
      for (Window& w : windows) {
        w.pos->write_back(phase);
        w.neg->write_back(phase);
        result.update_cycles += rows;  // sequential row write per window
      }
      // Weights changed: every memoized field value is stale.
      input_gen = ++gen_counter;
      refresh_row_sums();
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      sigma_plus[v] = result.spins[v] > 0 ? 1 : 0;
      if (config_.vector_kernel) {
        if (sigma_plus[v]) {
          sigma_packed.set(v);
        } else {
          sigma_packed.clear(v);
        }
      }
    }

    for (std::size_t g = 0; g < partition.groups.size(); ++g) {
      for (const ising::SpinIndex v : partition.groups[g]) {
        // field_v = Σ_u W_uv σ_u + F_v = 2·(MAC+ − MAC−)(σ+) − row_sum.
        std::int64_t mac;
        if (memoize && memo_stamp[v] == input_gen) {
          windows[group_of[v]].pos->charge_repeat_mac();
          windows[group_of[v]].neg->charge_repeat_mac();
          mac = memo_value[v];
          ++result.memo_hits;
        } else {
          mac = window_mac(v, sigma_plus, sigma_packed.words());
          if (memoize) {
            memo_value[v] = mac;
            memo_stamp[v] = input_gen;
            ++result.memo_misses;
          }
        }
        const std::int64_t field = 2 * mac - row_sum[v];

        // E = −Σ Wσσ − Σ Fσ: aligning σ_v with sign(field) descends.
        ising::Spin next = result.spins[v];
        switch (config_.noise) {
          case NoiseMode::kSramWeight:
          case NoiseMode::kSramSpin:  // spin noise degenerates to weight-free
          case NoiseMode::kNone:
            if (field > 0) next = 1;
            if (field < 0) next = -1;
            break;
          case NoiseMode::kLfsr: {
            // Metropolis on the flip: ΔE = 2 σ_v field.
            const auto delta = static_cast<double>(
                2 * static_cast<std::int64_t>(result.spins[v]) * field);
            const double temperature =
                equivalent_temperature(cell_model, phase) *
                std::sqrt(static_cast<double>(
                    std::max<std::uint32_t>(1, model.max_degree())));
            const bool accept =
                delta < 0.0 ||
                (temperature > 0.0 &&
                 rng.uniform() < std::exp(-delta / temperature));
            if (accept) next = static_cast<ising::Spin>(-result.spins[v]);
            break;
          }
        }
        if (next != result.spins[v]) {
          result.spins[v] = next;
          sigma_plus[v] = next > 0 ? 1 : 0;
          if (config_.vector_kernel) {
            if (sigma_plus[v]) {
              sigma_packed.set(v);
            } else {
              sigma_packed.clear(v);
            }
          }
          ++result.flips;
          // σ+ changed: memoized fields of every spin are stale.
          input_gen = ++gen_counter;
        }
      }
      // Chromatic groups are independent sets: one cycle updates the
      // whole window. Other strategies update members sequentially.
      result.update_cycles +=
          partition.parallel_safe ? 1 : partition.groups[g].size();
    }

    result.energy_hw = mapping.energy_hw(result.spins);
    if (result.energy_hw < result.best_energy_hw) {
      result.best_energy_hw = result.energy_hw;
      result.best_spins = result.spins;
    }
    if (config_.record_trace) {
      result.trace.push_back(result.energy_hw);
      if constexpr (telemetry::kEnabled) {
        telemetry::Registry::global().instant(
            "generic.sweep",
            {{"sweep", static_cast<double>(sweep)},
             {"energy_hw", static_cast<double>(result.energy_hw)}});
      }
    }
  }

  result.energy = mapping.to_model_energy(result.energy_hw, model.offset());
  result.best_energy =
      mapping.to_model_energy(result.best_energy_hw, model.offset());
  for (Window& w : windows) {
    result.storage += w.pos->counters();
    result.storage += w.neg->counters();
  }

  if constexpr (telemetry::kEnabled) {
    telemetry::Registry& telem = telemetry::Registry::global();
    telem.counter("generic.solves").add(1);
    telem.counter("generic.sweeps").add(result.sweeps);
    telem.counter("generic.flips").add(result.flips);
    telem.counter("generic.memo_hits").add(result.memo_hits);
    telem.counter("generic.memo_misses").add(result.memo_misses);
    telem.counter("generic.update_cycles").add(result.update_cycles);
    telem.gauge("generic.last_best_energy_hw")
        .set(static_cast<double>(result.best_energy_hw));
    hw::publish_storage(result.storage, telem);
  }
  return result;
}

}  // namespace cim::anneal
