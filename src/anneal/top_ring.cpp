#include "anneal/top_ring.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace cim::anneal {

double ring_length(const std::vector<geo::Point>& centroids,
                   const std::vector<std::uint32_t>& ring) {
  CIM_ASSERT(ring.size() == centroids.size());
  if (ring.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    total += geo::euclidean(centroids[ring[i]],
                            centroids[ring[(i + 1) % ring.size()]]);
  }
  return total;
}

std::vector<std::uint32_t> order_top_ring(
    const std::vector<geo::Point>& centroids) {
  const std::size_t n = centroids.size();
  std::vector<std::uint32_t> ring(n);
  std::iota(ring.begin(), ring.end(), 0U);
  if (n <= 3) return ring;  // every order is the same cycle

  if (n <= 7) {
    // Exhaustive: fix element 0, permute the rest.
    std::vector<std::uint32_t> perm(ring.begin() + 1, ring.end());
    std::sort(perm.begin(), perm.end());
    std::vector<std::uint32_t> best = ring;
    double best_len = std::numeric_limits<double>::infinity();
    do {
      std::vector<std::uint32_t> candidate{0};
      candidate.insert(candidate.end(), perm.begin(), perm.end());
      const double len = ring_length(centroids, candidate);
      if (len < best_len) {
        best_len = len;
        best = candidate;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
  }

  // Nearest neighbour construction + exhaustive 2-opt passes.
  std::vector<char> used(n, 0);
  ring.clear();
  ring.push_back(0);
  used[0] = 1;
  while (ring.size() < n) {
    const geo::Point from = centroids[ring.back()];
    double best_d = std::numeric_limits<double>::infinity();
    std::uint32_t best_i = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double d = geo::squared_distance(from, centroids[i]);
      if (d < best_d) {
        best_d = d;
        best_i = i;
      }
    }
    ring.push_back(best_i);
    used[best_i] = 1;
  }

  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t jn = (j + 1) % n;
        if (jn == i) continue;
        const geo::Point a = centroids[ring[i]];
        const geo::Point a1 = centroids[ring[i + 1]];
        const geo::Point b = centroids[ring[j]];
        const geo::Point b1 = centroids[ring[jn]];
        const double delta = geo::euclidean(a, b) + geo::euclidean(a1, b1) -
                             geo::euclidean(a, a1) - geo::euclidean(b, b1);
        if (delta < -1e-12) {
          std::reverse(ring.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       ring.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
  }
  return ring;
}

}  // namespace cim::anneal
