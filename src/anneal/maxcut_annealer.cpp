#include "anneal/maxcut_annealer.hpp"

#include <algorithm>
#include <cmath>

#include "cim/activity.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace cim::anneal {

namespace telemetry = util::telemetry;

MaxCutAnnealer::MaxCutAnnealer(MaxCutConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.weight_bits >= 1 && config_.weight_bits <= 8,
              "weight precision must be 1..8 bits");
}

CIM_DETERMINISM_ROOT
MaxCutResult MaxCutAnnealer::solve(
    const ising::MaxCutProblem& problem) const {
  const telemetry::Scope solve_scope(
      telemetry::Registry::global(), "maxcut.solve",
      {{"vertices", static_cast<double>(problem.size())},
       {"seed", static_cast<double>(config_.seed)}});
  const std::size_t n = problem.size();
  CIM_REQUIRE(n >= 1, "MaxCut problem needs at least one vertex");
  const noise::AnnealSchedule schedule(config_.schedule);
  const noise::SramCellModel cell_model(
      config_.sram, util::hash_combine(config_.seed, 0x4C7));
  util::Rng rng(util::hash_combine(config_.seed, 0x3C1));

  // Quantise |w| to the weight precision.
  std::int32_t w_abs_max = 1;
  for (const auto& e : problem.edges()) {
    w_abs_max = std::max(w_abs_max, std::abs(e.w));
  }
  const double scale =
      static_cast<double>((1U << config_.weight_bits) - 1U) /
      static_cast<double>(w_abs_max);
  const auto quantise = [&](std::int32_t w) {
    return static_cast<std::uint8_t>(
        std::clamp(std::round(std::abs(w) * scale), 0.0,
                   static_cast<double>((1U << config_.weight_bits) - 1U)));
  };

  // Weight planes: positive and negative magnitudes, n×n, column v =
  // couplings into spin v.
  const auto rows = static_cast<std::uint32_t>(n);
  const auto cols = static_cast<std::uint32_t>(n);
  std::vector<std::uint8_t> pos(static_cast<std::size_t>(n) * n, 0);
  std::vector<std::uint8_t> neg(static_cast<std::size_t>(n) * n, 0);
  for (const auto& e : problem.edges()) {
    auto& plane = e.w >= 0 ? pos : neg;
    const std::uint8_t q = quantise(e.w);
    plane[static_cast<std::size_t>(e.a) * n + e.b] = q;
    plane[static_cast<std::size_t>(e.b) * n + e.a] = q;
  }
  const noise::SramCellModel* weight_model =
      config_.noise == NoiseMode::kSramWeight ? &cell_model : nullptr;
  const std::uint64_t plane_cells =
      static_cast<std::uint64_t>(n) * n * config_.weight_bits;
  auto pos_storage = hw::make_fast_storage(rows, cols, weight_model, 0,
                                           config_.weight_bits);
  auto neg_storage = hw::make_fast_storage(rows, cols, weight_model,
                                           plane_cells, config_.weight_bits);
  pos_storage->write(pos);
  neg_storage->write(neg);

  // Chromatic classes for parallel updates.
  const ising::IsingModel graph = problem.to_ising();
  const auto colors = graph.chromatic_partition();
  std::uint32_t color_count = 0;
  for (const auto c : colors) color_count = std::max(color_count, c + 1);

  MaxCutResult result;
  result.color_count = color_count;
  result.sweeps = schedule.total_iterations();
  if (!config_.initial_spins.empty()) {
    CIM_REQUIRE(config_.initial_spins.size() == n,
                "initial_spins must have one spin per vertex");
    for (const ising::Spin s : config_.initial_spins) {
      CIM_REQUIRE(s == 1 || s == -1, "initial_spins entries must be ±1");
    }
    result.spins = config_.initial_spins;
  } else {
    result.spins = ising::random_spins(n, rng);
  }

  std::vector<std::uint8_t> sigma_plus(n);
  const std::vector<std::uint8_t> ones(n, 1);
  std::vector<std::int64_t> row_sum(n, 0);

  // Per-vertex partial-sum memo (DESIGN.md §16): the combined
  // (MAC+ − MAC−)(σ+) per column, stamped with an input-state generation
  // that advances on any flip or write-back. The per-sweep σ+ rebuild
  // copies the unchanged spin state and therefore does not advance it.
  // Sound because FastStorage weights are pure between write-backs.
  const bool memoize = config_.memoize_partial_sums;
  std::vector<std::int64_t> memo_value;
  std::vector<std::uint64_t> memo_stamp;  // 0 never matches (gens start at 1)
  std::uint64_t gen_counter = 1;
  std::uint64_t input_gen = 1;
  if (memoize) {
    memo_value.assign(n, 0);
    memo_stamp.assign(n, 0);
  }

  // Vector-kernel state: σ+ and the all-ones vector as packed 64-cell
  // words, the flip sites updated bit-for-bit with sigma_plus.
  hw::PackedBits sigma_packed;
  hw::PackedBits ones_packed;
  if (config_.vector_kernel) {
    sigma_packed.resize(rows);
    ones_packed.resize(rows);
    for (std::uint32_t v = 0; v < n; ++v) ones_packed.set(v);
  }

  const auto refresh_row_sums = [&] {
    // One all-ones MAC per column per plane; static between write-backs.
    for (std::uint32_t v = 0; v < n; ++v) {
      row_sum[v] =
          config_.vector_kernel
              ? pos_storage->mac_packed(hw::ColIndex(v), ones_packed.words()) -
                    neg_storage->mac_packed(hw::ColIndex(v),
                                            ones_packed.words())
              : pos_storage->mac(hw::ColIndex(v), ones) -
                    neg_storage->mac(hw::ColIndex(v), ones);
    }
  };

  long long cut = problem.cut_value(result.spins);
  result.best_cut = cut;

  for (std::size_t sweep = 0; sweep < schedule.total_iterations(); ++sweep) {
    const auto phase = schedule.at(sweep);
    if (phase.write_back) {
      pos_storage->write_back(phase);
      neg_storage->write_back(phase);
      // Weights changed: every memoized field value is stale.
      input_gen = ++gen_counter;
      refresh_row_sums();
      result.update_cycles += rows;  // sequential row write
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      sigma_plus[v] = result.spins[v] > 0 ? 1 : 0;
      if (config_.vector_kernel) {
        if (sigma_plus[v]) {
          sigma_packed.set(v);
        } else {
          sigma_packed.clear(v);
        }
      }
    }

    for (std::uint32_t color = 0; color < color_count; ++color) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (colors[v] != color) continue;
        // field_v = Σ_j w_vj σ_j = 2·(MAC+ − MAC−)(σ+) − row_sum.
        std::int64_t mac;
        if (memoize && memo_stamp[v] == input_gen) {
          // Repeat (column, σ+) pair: the hardware still reads both
          // planes in full; only the host-side reduction is skipped.
          pos_storage->charge_repeat_mac();
          neg_storage->charge_repeat_mac();
          mac = memo_value[v];
          ++result.memo_hits;
        } else {
          mac = config_.vector_kernel
                    ? pos_storage->mac_packed(hw::ColIndex(v),
                                              sigma_packed.words()) -
                          neg_storage->mac_packed(hw::ColIndex(v),
                                                  sigma_packed.words())
                    : pos_storage->mac(hw::ColIndex(v), sigma_plus) -
                          neg_storage->mac(hw::ColIndex(v), sigma_plus);
          if (memoize) {
            memo_value[v] = mac;
            memo_stamp[v] = input_gen;
            ++result.memo_misses;
          }
        }
        const std::int64_t field = 2 * mac - row_sum[v];

        ising::Spin next = result.spins[v];
        switch (config_.noise) {
          case NoiseMode::kSramWeight:
          case NoiseMode::kSramSpin:  // spin noise degenerates to weight-free
          case NoiseMode::kNone:
            if (field > 0) next = -1;
            if (field < 0) next = 1;
            break;
          case NoiseMode::kLfsr: {
            // Metropolis on the flip: ΔH = −2 σ_v field.
            const auto delta = static_cast<double>(
                -2 * static_cast<std::int64_t>(result.spins[v]) * field);
            const double temperature =
                equivalent_temperature(cell_model, phase) *
                std::sqrt(static_cast<double>(problem.max_degree()));
            const bool accept =
                delta < 0.0 ||
                (temperature > 0.0 &&
                 rng.uniform() < std::exp(-delta / temperature));
            if (accept) next = static_cast<ising::Spin>(-result.spins[v]);
            break;
          }
        }
        if (next != result.spins[v]) {
          result.spins[v] = next;
          sigma_plus[v] = next > 0 ? 1 : 0;
          if (config_.vector_kernel) {
            if (sigma_plus[v]) {
              sigma_packed.set(v);
            } else {
              sigma_packed.clear(v);
            }
          }
          ++result.flips;
          // σ+ changed: memoized fields of every vertex are stale.
          input_gen = ++gen_counter;
        }
      }
      ++result.update_cycles;  // all spins of a colour in one cycle
    }

    if (config_.record_trace) {
      result.trace.push_back(problem.cut_value(result.spins));
      result.best_cut = std::max(result.best_cut, result.trace.back());
      if constexpr (telemetry::kEnabled) {
        telemetry::Registry::global().instant(
            "maxcut.sweep",
            {{"sweep", static_cast<double>(sweep)},
             {"cut", static_cast<double>(result.trace.back())}});
      }
    }
  }

  result.cut = problem.cut_value(result.spins);
  result.best_cut = std::max(result.best_cut, result.cut);
  result.storage += pos_storage->counters();
  result.storage += neg_storage->counters();

  if constexpr (telemetry::kEnabled) {
    telemetry::Registry& telem = telemetry::Registry::global();
    telem.counter("maxcut.solves").add(1);
    telem.counter("maxcut.sweeps").add(result.sweeps);
    telem.counter("maxcut.flips").add(result.flips);
    telem.counter("maxcut.memo_hits").add(result.memo_hits);
    telem.counter("maxcut.memo_misses").add(result.memo_misses);
    telem.counter("maxcut.update_cycles").add(result.update_cycles);
    telem.gauge("maxcut.last_best_cut")
        .set(static_cast<double>(result.best_cut));
    hw::publish_storage(result.storage, telem);
  }
  return result;
}

}  // namespace cim::anneal
