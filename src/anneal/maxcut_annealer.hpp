// Max-Cut on the noisy digital-CIM substrate.
//
// Maps a Max-Cut instance onto the same hardware primitives as the TSP
// annealer: couplings live in noisy SRAM weight storage (8-bit magnitudes;
// signed graphs use a positive and a negative magnitude plane, subtracted
// digitally — a standard digital-CIM signed-weight trick), spins are the
// input register, and one spin update is a column MAC followed by a sign
// decision. Non-adjacent spins (a graph colouring) update in parallel,
// and the §IV.B schedule anneals the weight noise away.
//
// This makes the Table III comparison executable: the competitors'
// problem class (Max-Cut, complete or sparse graphs) runs on this design's
// machinery with the same entropy source.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/kernel_config.hpp"
#include "anneal/noise_source.hpp"
#include "cim/storage.hpp"
#include "ising/maxcut.hpp"
#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"

namespace cim::anneal {

struct MaxCutConfig {
  noise::AnnealSchedule::Params schedule;  ///< sweeps = total_iterations
  noise::SramNoiseParams sram;
  NoiseMode noise = NoiseMode::kSramWeight;
  /// Bit-sliced packed MACs (cim/bitslice.hpp): the spin register σ+ is
  /// kept as packed 64-cell words and every field evaluation goes through
  /// WeightStorage::mac_packed. Bit-identical to the dense scalar path
  /// (cuts, flip sequence, storage counters), which stays the oracle.
  bool vector_kernel = default_vector_kernel();
  /// Per-vertex partial-sum memoization (DESIGN.md §16): the combined
  /// (MAC+ − MAC−)(σ+) of a vertex is remembered under an input-state
  /// generation that advances on any spin flip or write-back, so sweeps
  /// over a frozen neighbourhood skip the host-side reduction while still
  /// charging the hardware read cost. Bit-identical to the unmemoized
  /// paths (cuts, flip sequence, StorageCounters). Defaults from
  /// CIMANNEAL_MEMOIZE (unset → on).
  bool memoize_partial_sums = default_memoize();
  std::uint32_t weight_bits = 8;
  std::uint64_t seed = 1;
  /// Optional warm start (src/store): a full ±1 spin assignment from a
  /// previous solve. When non-empty it must have one spin per vertex;
  /// it replaces the random initial assignment. Deterministic for a given
  /// assignment + seed, but not bit-identical to a cold solve.
  std::vector<ising::Spin> initial_spins;
  bool record_trace = false;
};

struct MaxCutResult {
  std::vector<ising::Spin> spins;
  long long cut = 0;        ///< final cut value
  long long best_cut = 0;   ///< best cut seen during the anneal
  std::size_t sweeps = 0;
  std::size_t flips = 0;
  std::size_t color_count = 0;  ///< chromatic classes (parallel groups)
  /// Field evaluations answered from the per-vertex memo vs. real MAC
  /// pairs that (re)filled it. Both 0 when memoization is off.
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::uint64_t update_cycles = 0;
  hw::StorageCounters storage;
  std::vector<long long> trace;  ///< cut after each sweep (optional)
};

class MaxCutAnnealer {
 public:
  explicit MaxCutAnnealer(MaxCutConfig config);

  const MaxCutConfig& config() const { return config_; }

  MaxCutResult solve(const ising::MaxCutProblem& problem) const;

 private:
  MaxCutConfig config_;
};

}  // namespace cim::anneal
