// Annealing noise sources (§IV.B and the related-work ablations).
//
//   * kSramWeight — the paper's contribution: process variation corrupts
//     the *weights*; spatial variation becomes temporal noise because each
//     update addresses different cells. Acceptance is a plain energy
//     comparison — all stochasticity enters through the weights.
//   * kSramSpin   — the [4]-style design the paper argues against: the
//     same spatially fixed error pattern is applied to the *spin inputs*.
//     With frozen weights the dynamics are deterministic and converge
//     poorly; reproduced for the ablation bench.
//   * kLfsr       — conventional digital annealing: exact weights, a
//     pseudo-random number generator drives Metropolis acceptance. The
//     temperature is matched to the SRAM noise magnitude of the same
//     schedule phase so the comparison is noise-equivalent.
//   * kNone       — greedy descent (no noise); shows why annealing is
//     needed at all.
#pragma once

#include <cstdint>
#include <string>

#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"

namespace cim::anneal {

enum class NoiseMode { kSramWeight, kSramSpin, kLfsr, kNone };

const char* noise_mode_name(NoiseMode mode);

/// Standard deviation of the quantised-weight error that `phase` induces
/// on one stored weight: LSB flips are ±2^b events with the phase's
/// per-cell flip rate.
double weight_noise_sigma(const noise::SramCellModel& model,
                          const noise::SchedulePhase& phase);

/// Metropolis temperature (in quantised-energy units) equivalent to the
/// SRAM weight noise of `phase` on a swap energy difference (which sums
/// four MACs of two weights each).
double equivalent_temperature(const noise::SramCellModel& model,
                              const noise::SchedulePhase& phase);

/// Spatially fixed spin-error filter used by kSramSpin: a register cell's
/// stored bit settles toward its preferred value exactly like a weight
/// cell would. `spin_cell_id` must identify the physical register bit, not
/// the logical spin value.
bool filter_spin_bit(const noise::SramCellModel& model,
                     std::uint64_t spin_cell_id,
                     const noise::SchedulePhase& phase, bool bit);

}  // namespace cim::anneal
