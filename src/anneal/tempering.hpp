// Parallel tempering (replica exchange) — the related-work extension the
// paper cites as "adaptive parallel tempering" [20].
//
// R replicas anneal the same Ising problem at a geometric ladder of
// temperatures whose end points are derived from the SRAM noise model
// (the equivalent temperature of the hottest/coldest schedule phase), and
// adjacent replicas exchange configurations with the standard Metropolis
// criterion. Exchange lets cold replicas inherit the exploration of hot
// replicas — stronger than restarts on rugged landscapes.
//
// Implemented over the generic IsingModel so it works for Max-Cut and any
// other coupling graph.
#pragma once

#include <cstdint>
#include <vector>

#include "ising/maxcut.hpp"
#include "ising/model.hpp"
#include "noise/schedule.hpp"
#include "noise/sram_model.hpp"

namespace cim::anneal {

struct TemperingConfig {
  std::size_t replicas = 8;
  std::size_t sweeps = 400;
  std::size_t exchange_interval = 1;  ///< sweeps between exchange rounds
  /// Temperature ladder endpoints as multiples of the SRAM-derived hot
  /// temperature (schedule start phase). t_cold_factor ≪ 1.
  double t_hot_factor = 1.0;
  double t_cold_factor = 0.02;
  noise::AnnealSchedule::Params schedule;  ///< defines the hot phase
  noise::SramNoiseParams sram;
  std::uint64_t seed = 1;
};

struct TemperingResult {
  std::vector<ising::Spin> best_spins;
  double best_energy = 0.0;   ///< Ising Hamiltonian of the best state
  std::size_t exchanges_attempted = 0;
  std::size_t exchanges_accepted = 0;
  std::vector<double> final_energies;  ///< per replica, hot → cold
  std::vector<double> temperatures;

  double exchange_rate() const {
    return exchanges_attempted
               ? static_cast<double>(exchanges_accepted) /
                     static_cast<double>(exchanges_attempted)
               : 0.0;
  }
};

class ParallelTempering {
 public:
  explicit ParallelTempering(TemperingConfig config);

  TemperingResult solve(const ising::IsingModel& model) const;

  /// Convenience wrapper for Max-Cut: returns the best cut found.
  long long solve_maxcut(const ising::MaxCutProblem& problem,
                         TemperingResult* details = nullptr) const;

 private:
  TemperingConfig config_;
};

}  // namespace cim::anneal
