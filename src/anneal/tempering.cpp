#include "anneal/tempering.hpp"

#include <algorithm>
#include <cmath>

#include "anneal/noise_source.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::anneal {

ParallelTempering::ParallelTempering(TemperingConfig config)
    : config_(std::move(config)) {
  CIM_REQUIRE(config_.replicas >= 1,
              "tempering needs at least one replica");
  CIM_REQUIRE(config_.sweeps >= 1, "tempering needs at least one sweep");
  CIM_REQUIRE(config_.exchange_interval >= 1,
              "exchange interval must be positive");
  CIM_REQUIRE(config_.t_cold_factor > 0.0 &&
                  config_.t_cold_factor < config_.t_hot_factor,
              "temperature ladder must satisfy 0 < cold < hot");
}

TemperingResult ParallelTempering::solve(
    const ising::IsingModel& model) const {
  const std::size_t n = model.size();
  util::Rng rng(util::hash_combine(config_.seed, 0x9E47));

  // Temperature ladder anchored to the SRAM noise of the hot phase.
  const noise::SramCellModel cell_model(
      config_.sram, util::hash_combine(config_.seed, 0x7E47));
  const noise::AnnealSchedule schedule(config_.schedule);
  const double t_base =
      std::max(equivalent_temperature(cell_model, schedule.at(0)), 1e-6);

  TemperingResult result;
  const std::size_t r_count = config_.replicas;
  result.temperatures.resize(r_count);
  const double hot = config_.t_hot_factor * t_base;
  const double cold = config_.t_cold_factor * t_base;
  if (r_count == 1) {
    // Degenerate single-replica ladder: plain Metropolis at the hot
    // temperature. The geometric decay below would divide by
    // r_count - 1 == 0 and poison every acceptance test with NaN.
    result.temperatures[0] = hot;
  } else {
    const double decay =
        std::pow(cold / hot, 1.0 / static_cast<double>(r_count - 1));
    for (std::size_t r = 0; r < r_count; ++r) {
      result.temperatures[r] =
          hot * std::pow(decay, static_cast<double>(r));
    }
  }

  // Replica states and energies.
  std::vector<std::vector<ising::Spin>> states(r_count);
  std::vector<double> energies(r_count);
  for (std::size_t r = 0; r < r_count; ++r) {
    states[r] = ising::random_spins(n, rng);
    energies[r] = model.hamiltonian(states[r]);
  }
  result.best_spins = states.back();
  result.best_energy = energies.back();

  for (std::size_t sweep = 0; sweep < config_.sweeps; ++sweep) {
    for (std::size_t r = 0; r < r_count; ++r) {
      // Metropolis sweep; track the energy incrementally.
      for (std::size_t step = 0; step < n; ++step) {
        const auto i = static_cast<ising::SpinIndex>(rng.below(n));
        const double delta = model.flip_delta(states[r], i);
        const bool accept =
            delta <= 0.0 ||
            rng.uniform() < std::exp(-delta / result.temperatures[r]);
        if (accept) {
          states[r][i] = static_cast<ising::Spin>(-states[r][i]);
          energies[r] += delta;
        }
      }
      if (energies[r] < result.best_energy) {
        result.best_energy = energies[r];
        result.best_spins = states[r];
      }
    }

    if (sweep % config_.exchange_interval == 0) {
      // Alternate even/odd adjacent pairs like a brick wall.
      const std::size_t start = (sweep / config_.exchange_interval) % 2;
      for (std::size_t r = start; r + 1 < r_count; r += 2) {
        ++result.exchanges_attempted;
        const double beta_i = 1.0 / result.temperatures[r];
        const double beta_j = 1.0 / result.temperatures[r + 1];
        const double log_p =
            (beta_j - beta_i) * (energies[r + 1] - energies[r]);
        if (log_p >= 0.0 || rng.uniform() < std::exp(log_p)) {
          std::swap(states[r], states[r + 1]);
          std::swap(energies[r], energies[r + 1]);
          ++result.exchanges_accepted;
        }
      }
    }
  }

  result.final_energies = energies;
  return result;
}

long long ParallelTempering::solve_maxcut(
    const ising::MaxCutProblem& problem, TemperingResult* details) const {
  const ising::IsingModel model = problem.to_ising();
  TemperingResult result = solve(model);
  const long long cut = problem.cut_value(result.best_spins);
  if (details) *details = std::move(result);
  return cut;
}

}  // namespace cim::anneal
