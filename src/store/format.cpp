#include "store/format.hpp"

#include <cstdio>
#include <cstring>
#include <span>

#include "util/error.hpp"
#include "util/sha256.hpp"

namespace cim::store {

namespace {

constexpr char kMagic[8] = {'C', 'I', 'M', 'S', 'T', 'O', 'R', 'E'};
constexpr std::size_t kDigestBytes = 32;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// resize + memcpy rather than vector::insert over a char range: GCC 12's
// -Wstringop-overflow misfires on the range-insert reallocation path at
// some optimization levels ("writing 1 or more bytes into a region of
// size 0"), and the build treats warnings as errors.
void append_bytes(std::vector<std::uint8_t>& out, const void* bytes,
                  std::size_t n) {
  const std::size_t off = out.size();
  out.resize(off + n);
  if (n > 0) std::memcpy(out.data() + off, bytes, n);
}

/// Bounds-checked little-endian cursor over a read buffer. Every take_*
/// returns false instead of reading past the end, so truncated files
/// surface as kCorrupt.
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool take_u32(std::uint32_t& v) {
    if (size - pos < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool take_u64(std::uint64_t& v) {
    if (size - pos < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool take_bytes(void* out, std::size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

void set_status(ReadStatus* status, ReadStatus value) {
  if (status != nullptr) *status = value;
}

}  // namespace

void write_record(const std::string& path, const Record& record) {
  std::vector<std::uint8_t> body;
  body.reserve(64 + record.key.size() + record.payload.size() * 8);
  append_bytes(body, kMagic, sizeof(kMagic));
  append_u32(body, kFormatVersion);
  append_u32(body, static_cast<std::uint32_t>(record.kind));
  append_u64(body, record.sequence);
  append_u64(body, static_cast<std::uint64_t>(record.score));
  append_u64(body, record.key.size());
  append_bytes(body, record.key.data(), record.key.size());
  append_u64(body, record.payload.size());
  for (const std::int64_t v : record.payload) {
    append_u64(body, static_cast<std::uint64_t>(v));
  }

  util::Sha256 hasher;
  hasher.update(std::span<const std::uint8_t>(body.data(), body.size()));
  const auto digest = hasher.digest();

  // The one sanctioned raw-stdio serialisation path for store records
  // (cimlint: store-unversioned-io).
  std::FILE* file = std::fopen(path.c_str(), "wb");
  CIM_REQUIRE(file != nullptr,
              "warm-start store: cannot open '" + path + "' for writing");
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), file) == body.size() &&
      std::fwrite(digest.data(), 1, digest.size(), file) == digest.size();
  const bool closed = std::fclose(file) == 0;
  CIM_REQUIRE(ok && closed,
              "warm-start store: short write to '" + path + "'");
}

std::optional<Record> read_record(const std::string& path,
                                  ReadStatus* status) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    set_status(status, ReadStatus::kMissing);
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    set_status(status, ReadStatus::kMissing);
    return std::nullopt;
  }

  if (bytes.size() < sizeof(kMagic) + 4 + kDigestBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }

  const std::size_t body_size = bytes.size() - kDigestBytes;
  Cursor cur{bytes.data(), body_size, sizeof(kMagic)};
  std::uint32_t version = 0;
  if (!cur.take_u32(version)) {
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }
  // Digest check before the version gate: a record whose trailer does not
  // match is corrupt regardless of what its version field claims.
  util::Sha256 hasher;
  hasher.update(std::span<const std::uint8_t>(bytes.data(), body_size));
  const auto digest = hasher.digest();
  if (std::memcmp(digest.data(), bytes.data() + body_size, kDigestBytes) !=
      0) {
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }
  if (version != kFormatVersion) {
    set_status(status, ReadStatus::kVersionMismatch);
    return std::nullopt;
  }

  Record record;
  std::uint32_t kind = 0;
  std::uint64_t score = 0;
  std::uint64_t key_len = 0;
  std::uint64_t payload_count = 0;
  if (!cur.take_u32(kind) || !cur.take_u64(record.sequence) ||
      !cur.take_u64(score) || !cur.take_u64(key_len) ||
      key_len > cur.size - cur.pos) {
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }
  record.kind = static_cast<RecordKind>(kind);
  record.score = static_cast<std::int64_t>(score);
  record.key.resize(key_len);
  if (!cur.take_bytes(record.key.data(), key_len) ||
      !cur.take_u64(payload_count) ||
      payload_count > (cur.size - cur.pos) / 8) {
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }
  record.payload.resize(payload_count);
  for (std::uint64_t i = 0; i < payload_count; ++i) {
    std::uint64_t v = 0;
    if (!cur.take_u64(v)) {
      set_status(status, ReadStatus::kCorrupt);
      return std::nullopt;
    }
    record.payload[i] = static_cast<std::int64_t>(v);
  }
  if (cur.pos != body_size) {  // trailing junk inside the hashed body
    set_status(status, ReadStatus::kCorrupt);
    return std::nullopt;
  }
  set_status(status, ReadStatus::kOk);
  return record;
}

}  // namespace cim::store
