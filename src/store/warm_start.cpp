#include "store/warm_start.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace cim::store {

namespace fs = std::filesystem;
namespace telemetry = util::telemetry;

namespace {

constexpr std::size_t kNamePrefixChars = 16;

/// Filename stem from a "sha256:<hex>" key: the first 16 hex characters.
/// The full key is verified inside the record on every read, so a stem
/// collision degrades to a miss/overwrite, never to a wrong answer.
std::string key_stem(const std::string& key) {
  constexpr std::string_view kScheme = "sha256:";
  std::string hex = key;
  if (hex.rfind(kScheme, 0) == 0) hex = hex.substr(kScheme.size());
  CIM_REQUIRE(!hex.empty(), "warm-start store: empty content-hash key");
  for (const char c : hex) {
    CIM_REQUIRE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'),
                "warm-start store: key must be lowercase hex");
  }
  return hex.substr(0, std::min(hex.size(), kNamePrefixChars));
}

void count(const char* name, std::uint64_t n = 1) {
  if constexpr (telemetry::kEnabled) {
    telemetry::Registry::global().counter(name).add(n);
  }
}

}  // namespace

WarmStartStore::WarmStartStore(std::string dir, std::size_t l0_capacity,
                               std::size_t l1_capacity)
    : dir_(std::move(dir)),
      l0_capacity_(l0_capacity),
      l1_capacity_(l1_capacity) {
  CIM_REQUIRE(l0_capacity_ >= 1 && l1_capacity_ >= 1,
              "warm-start store: level capacities must be >= 1");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CIM_REQUIRE(!ec, "warm-start store: cannot create '" + dir_ + "'");
}

std::string WarmStartStore::entry_path(const std::string& key,
                                       int level) const {
  return (fs::path(dir_) /
          (key_stem(key) + (level == 0 ? ".l0" : ".l1")))
      .string();
}

std::optional<Record> WarmStartStore::load_level(const std::string& path) {
  ReadStatus status = ReadStatus::kOk;
  auto record = read_record(path, &status);
  if (record) return record;
  if (status == ReadStatus::kCorrupt ||
      status == ReadStatus::kVersionMismatch) {
    // Damaged or foreign-version record: drop it so the slot heals, and
    // let the caller degrade to a cold start.
    std::error_code ec;
    fs::remove(path, ec);
    ++stats_.dropped;
    count("store.dropped");
  }
  return std::nullopt;
}

std::optional<WarmStartStore::Located> WarmStartStore::find(
    const std::string& key, RecordKind kind) {
  for (int level = 0; level < 2; ++level) {
    const std::string path = entry_path(key, level);
    auto record = load_level(path);
    if (record && record->key == key && record->kind == kind) {
      return Located{std::move(*record), path, level};
    }
  }
  return std::nullopt;
}

std::uint64_t WarmStartStore::next_sequence() {
  std::uint64_t max_seq = 0;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".l0" || ext == ".l1") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    if (const auto record = read_record(path)) {
      max_seq = std::max(max_seq, record->sequence);
    }
  }
  return max_seq + 1;
}

void WarmStartStore::rebalance() {
  // Collect (sequence, path) per level; unreadable records are dropped on
  // sight so they cannot pin a slot forever.
  const auto level_entries = [&](const char* ext) {
    std::vector<std::pair<std::uint64_t, std::string>> entries;
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension().string() == ext) {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
      if (auto record = load_level(path)) {
        entries.emplace_back(record->sequence, path);
      }
    }
    std::sort(entries.begin(), entries.end());
    return entries;
  };

  auto l0 = level_entries(".l0");
  std::size_t demote = l0.size() > l0_capacity_ ? l0.size() - l0_capacity_
                                                : 0;
  for (std::size_t i = 0; i < demote; ++i) {
    const fs::path src(l0[i].second);
    fs::path dst = src;
    dst.replace_extension(".l1");
    std::error_code ec;
    fs::remove(dst, ec);  // same-stem cold copy is superseded
    fs::rename(src, dst, ec);
    if (!ec) {
      ++stats_.demotions;
    }
  }

  auto l1 = level_entries(".l1");
  std::size_t evict = l1.size() > l1_capacity_ ? l1.size() - l1_capacity_
                                               : 0;
  for (std::size_t i = 0; i < evict; ++i) {
    std::error_code ec;
    fs::remove(l1[i].second, ec);
    if (!ec) {
      ++stats_.evictions;
      count("store.evictions");
    }
  }
}

void WarmStartStore::put(const std::string& key, RecordKind kind,
                         std::vector<std::int64_t> payload,
                         std::int64_t score) {
  if (const auto existing = find(key, kind);
      existing && existing->record.score <= score) {
    ++stats_.kept;
    return;
  }
  Record record;
  record.kind = kind;
  record.key = key;
  record.sequence = next_sequence();
  record.score = score;
  record.payload = std::move(payload);
  // New and improved entries always land in the hot level; a superseded
  // cold copy of the same key must not shadow them.
  std::error_code ec;
  fs::remove(entry_path(key, 1), ec);
  write_record(entry_path(key, 0), record);
  ++stats_.stores;
  count("store.stores");
  rebalance();
}

std::optional<std::vector<tsp::CityId>> WarmStartStore::load_tour(
    const std::string& key, std::size_t n) {
  auto located = find(key, RecordKind::kTour);
  if (located) {
    std::vector<tsp::CityId> order;
    order.reserve(located->record.payload.size());
    std::vector<std::uint8_t> seen(n, 0);
    bool valid = located->record.payload.size() == n;
    for (const std::int64_t v : located->record.payload) {
      if (!valid) break;
      if (v < 0 || static_cast<std::uint64_t>(v) >= n ||
          seen[static_cast<std::size_t>(v)]) {
        valid = false;
        break;
      }
      seen[static_cast<std::size_t>(v)] = 1;
      order.push_back(static_cast<tsp::CityId>(v));
    }
    if (!valid) {
      // A verified record that is not a permutation of this instance's
      // cities is stale garbage for our purposes: drop and start cold.
      std::error_code ec;
      fs::remove(located->path, ec);
      ++stats_.dropped;
      count("store.dropped");
    } else {
      ++stats_.hits;
      count("store.hits");
      if (located->level == 1) {
        // Promote the hit to the hot level with fresh recency.
        located->record.sequence = next_sequence();
        std::error_code ec;
        fs::remove(located->path, ec);
        write_record(entry_path(key, 0), located->record);
        ++stats_.promotions;
        rebalance();
      }
      return order;
    }
  }
  ++stats_.misses;
  count("store.misses");
  return std::nullopt;
}

void WarmStartStore::store_tour(const std::string& key,
                                std::span<const tsp::CityId> order,
                                long long length) {
  std::vector<std::int64_t> payload(order.begin(), order.end());
  put(key, RecordKind::kTour, std::move(payload), length);
}

std::optional<std::vector<std::int8_t>> WarmStartStore::load_spins(
    const std::string& key, std::size_t n) {
  auto located = find(key, RecordKind::kSpins);
  if (located) {
    bool valid = located->record.payload.size() == n;
    std::vector<std::int8_t> spins;
    spins.reserve(located->record.payload.size());
    for (const std::int64_t v : located->record.payload) {
      if (v != 1 && v != -1) {
        valid = false;
        break;
      }
      spins.push_back(static_cast<std::int8_t>(v));
    }
    if (!valid) {
      std::error_code ec;
      fs::remove(located->path, ec);
      ++stats_.dropped;
      count("store.dropped");
    } else {
      ++stats_.hits;
      count("store.hits");
      if (located->level == 1) {
        located->record.sequence = next_sequence();
        std::error_code ec;
        fs::remove(located->path, ec);
        write_record(entry_path(key, 0), located->record);
        ++stats_.promotions;
        rebalance();
      }
      return spins;
    }
  }
  ++stats_.misses;
  count("store.misses");
  return std::nullopt;
}

void WarmStartStore::store_spins(const std::string& key,
                                 std::span<const std::int8_t> spins,
                                 long long cut) {
  std::vector<std::int64_t> payload(spins.begin(), spins.end());
  // Cuts are better when larger; the store orders by "lower is better".
  put(key, RecordKind::kSpins, std::move(payload), -cut);
}

}  // namespace cim::store
