// Versioned on-disk record format of the warm-start store.
//
// Every persistent artifact the store writes is one self-verifying
// record file:
//
//   "CIMSTORE"             8-byte magic
//   u32  version           kFormatVersion; mismatch → treated as absent
//   u32  kind              payload discriminator (tour / spin assignment)
//   u64  sequence          store recency stamp (monotonic, no clocks)
//   i64  score             solution quality, lower is better
//   u64  key length + bytes    content-hash key ("sha256:<hex>")
//   u64  payload count + i64 entries
//   32-byte SHA-256 digest of every preceding byte
//
// All integers are little-endian. The trailing digest makes corruption —
// truncation, bit rot, torn writes — detectable: read_record() verifies
// it and reports kCorrupt instead of returning garbage, and the store
// degrades to a cold start.
//
// This file is the ONLY sanctioned home of raw fread/fwrite on store
// records (cimlint rule `store-unversioned-io`): any other call site
// would be a second, unversioned serialisation path waiting to drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cim::store {

inline constexpr std::uint32_t kFormatVersion = 1;

/// Payload discriminator of a record.
enum class RecordKind : std::uint32_t {
  kTour = 1,  ///< payload: city ids in visiting order
  kSpins = 2, ///< payload: ±1 spin assignment
};

struct Record {
  RecordKind kind = RecordKind::kTour;
  std::string key;            ///< content-hash key ("sha256:<hex>")
  std::uint64_t sequence = 0; ///< store-maintained recency stamp
  std::int64_t score = 0;     ///< solution quality, lower is better
  std::vector<std::int64_t> payload;
};

enum class ReadStatus {
  kOk,
  kMissing,          ///< file absent or unreadable
  kVersionMismatch,  ///< recognised magic, different format version
  kCorrupt,          ///< bad magic, truncation, or digest mismatch
};

/// Serialises `record` to `path` (overwrites). Throws cim::Error when the
/// file cannot be written.
void write_record(const std::string& path, const Record& record);

/// Reads and verifies a record. Returns the record on kOk; nullopt
/// otherwise, with the reason in *status when given. Never throws on bad
/// content — a damaged store must degrade, not crash the solve.
std::optional<Record> read_record(const std::string& path,
                                  ReadStatus* status = nullptr);

}  // namespace cim::store
