// Persistent warm-start store: instance fingerprint → best known
// solution (DESIGN.md §16).
//
// A directory of self-verifying record files (store/format.hpp) keyed by
// content hash ("sha256:<hex>", from tsp::instance_fingerprint), organised
// as two LRU-bounded levels in the LSM spirit:
//
//   L0  small, hot: every store/promote lands here
//   L1  larger, cold: L0 overflow demotes its least-recent entry down
//
// A hit in L1 promotes the entry back to L0; L1 overflow evicts the
// least-recent entry for good. Recency is a monotonic per-store sequence
// number persisted inside the records — no clocks, so the store's
// behaviour is a pure function of the operation sequence.
//
// Failure policy: a record that fails verification (truncation, bit rot,
// version mismatch) is dropped and reported as a miss — the solver
// degrades to a cold start, never crashes, never consumes garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "tsp/instance.hpp"

namespace cim::store {

struct WarmStartStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;      ///< records written (new or improved)
  std::uint64_t kept = 0;        ///< store skipped: existing score is better
  std::uint64_t promotions = 0;  ///< L1 → L0 on hit
  std::uint64_t demotions = 0;   ///< L0 → L1 on overflow
  std::uint64_t evictions = 0;   ///< dropped from L1 on overflow
  std::uint64_t dropped = 0;     ///< corrupt / version-mismatch records removed
};

class WarmStartStore {
 public:
  /// Opens (creating if needed) the store at `dir`. Level capacities
  /// bound the record count per level; both must be ≥ 1.
  explicit WarmStartStore(std::string dir, std::size_t l0_capacity = 8,
                          std::size_t l1_capacity = 56);

  /// Best known tour for the fingerprinted instance, or nullopt (cold
  /// start). Validates that the payload is a permutation of n cities.
  std::optional<std::vector<tsp::CityId>> load_tour(const std::string& key,
                                                    std::size_t n);

  /// Records a tour if it beats the stored score for this key.
  void store_tour(const std::string& key,
                  std::span<const tsp::CityId> order, long long length);

  /// Best known ±1 spin assignment, or nullopt.
  std::optional<std::vector<std::int8_t>> load_spins(const std::string& key,
                                                     std::size_t n);

  /// Records a spin assignment if its cut beats the stored one.
  void store_spins(const std::string& key,
                   std::span<const std::int8_t> spins, long long cut);

  const WarmStartStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Located {
    Record record;
    std::string path;
    int level = 0;
  };

  std::string entry_path(const std::string& key, int level) const;
  std::optional<Located> find(const std::string& key, RecordKind kind);
  std::optional<Record> load_level(const std::string& path);
  void put(const std::string& key, RecordKind kind,
           std::vector<std::int64_t> payload, std::int64_t score);
  /// Demotes L0 overflow to L1 and evicts L1 overflow, least-recent
  /// (lowest sequence) first.
  void rebalance();
  std::uint64_t next_sequence();

  std::string dir_;
  std::size_t l0_capacity_;
  std::size_t l1_capacity_;
  WarmStartStats stats_;
};

}  // namespace cim::store
